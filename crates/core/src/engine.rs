//! The simulation engine: per-architecture read/write paths, writeback
//! machinery, and syncer daemons.
//!
//! Every path here follows the paper's §3 design descriptions; quotes in
//! comments mark the load-bearing sentences.

use std::rc::Rc;

use fcache_cache::{InsertOutcome, Medium};
use fcache_des::SimTime;
use fcache_net::Direction;
use fcache_types::{BlockAddr, OpKind, TraceOp, BLOCK_SIZE};

use crate::arch::Architecture;
use crate::flush::{self, FlushReq, FlushTarget};
use crate::host::HostCtx;
use crate::policy::WritebackPolicy;

/// Where the data being flushed currently lives, which decides what the
/// flush costs before the network leg.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlushSource {
    /// Data is in RAM or "in hand" (write-through with the payload still in
    /// the requester's context): only the wire + filer cost applies.
    InHand,
    /// Data must first be read off the flash device.
    Flash,
}

/// Executes one trace operation, returning its application latency.
pub(crate) async fn execute_op(h: &Rc<HostCtx>, op: &TraceOp) -> SimTime {
    if !op.warmup() {
        h.maybe_end_warmup();
    }
    let t0 = h.sim.now();
    match (op.kind(), h.cfg.arch) {
        (OpKind::Read, Architecture::Unified) => read_unified(h, op).await,
        (OpKind::Read, _) => read_layered(h, op).await,
        (OpKind::Write, Architecture::Unified) => write_unified(h, op).await,
        (OpKind::Write, _) => write_layered(h, op).await,
    }
    let latency = h.sim.now() - t0;
    if !op.warmup() {
        h.metrics.record_op(op.kind(), latency, op.nblocks());
    }
    latency
}

// ---------------------------------------------------------------------------
// Read paths
// ---------------------------------------------------------------------------

/// Naive / lookaside read: RAM, then flash, then the filer; fetched blocks
/// are "first placed in flash, then into RAM" (§3.2).
async fn read_layered(h: &Rc<HostCtx>, op: &TraceOp) {
    // RAM stage: hits pay the RAM read latency; misses fall through. The
    // miss/hit lists live in pooled buffers so the per-op path performs no
    // heap allocation after pool warmup.
    let mut ram_misses = h.take_buf();
    let mut wait = SimTime::ZERO;
    if h.has_ram() {
        let mut ram = h.ram.borrow_mut();
        for b in op.blocks() {
            if ram.lookup(b) {
                wait += h.cfg.ram_model.read;
                if h.cfg.inclusive_promotion && h.has_flash() {
                    // Keep the flash LRU order a superset of RAM recency so
                    // the subset property holds without management (§3.3).
                    h.flash.borrow_mut().promote(b);
                }
            } else {
                ram_misses.push(b);
            }
        }
    } else {
        ram_misses.extend(op.blocks());
    }
    if wait > SimTime::ZERO {
        h.sim.sleep(wait).await;
    }
    if ram_misses.is_empty() {
        h.put_buf(ram_misses);
        return;
    }

    // Flash stage.
    let mut flash_hits = h.take_buf();
    let mut filer_misses = h.take_buf();
    if h.has_flash() {
        let mut flash = h.flash.borrow_mut();
        for b in &ram_misses {
            if flash.lookup(*b) {
                flash_hits.push(*b);
            } else {
                filer_misses.push(*b);
            }
        }
    } else {
        std::mem::swap(&mut filer_misses, &mut ram_misses);
    }
    // Device time for the flash hits goes through the timing service:
    // flat mode charges one combined sleep (as the paper's model always
    // did), SSD mode services each block through the bounded device queue.
    h.dev.read_batch(&flash_hits).await;

    // Filer stage: "each I/O request uses one packet in each direction"
    // (§5) — one request covers every block this op still misses.
    if !filer_misses.is_empty() {
        let n = filer_misses.len() as u32;
        h.segment.transfer(Direction::ToServer, 0).await;
        h.filer.read_blocks(&filer_misses).await;
        h.segment
            .transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
            .await;
        if h.has_flash() && h.cfg.populate_flash_on_read {
            for &b in filer_misses.iter() {
                flash_insert(h, b, false).await;
            }
        }
    }

    // Fill RAM with everything that missed it.
    if h.has_ram() {
        for &b in flash_hits.iter().chain(filer_misses.iter()) {
            ram_insert(h, b, false).await;
        }
    }
    h.put_buf(ram_misses);
    h.put_buf(flash_hits);
    h.put_buf(filer_misses);
}

/// Unified read: one lookup against the single LRU chain; hits pay the
/// latency of whichever medium the frame lives in.
async fn read_unified(h: &Rc<HostCtx>, op: &TraceOp) {
    let unified = h
        .unified
        .as_ref()
        .expect("unified arch has a unified cache");
    let mut wait = SimTime::ZERO;
    let mut misses = h.take_buf();
    let mut flash_hits = h.take_buf();
    {
        let mut u = unified.borrow_mut();
        for b in op.blocks() {
            match u.lookup(b) {
                Some(Medium::Ram) => wait += h.cfg.ram_model.read,
                Some(Medium::Flash) => match h.dev.try_flat_read(b) {
                    // Flat timing folds into the one combined sleep below,
                    // exactly as before the device service existed.
                    Some(lat) => wait += lat,
                    // Queue-aware timing: the hit must be serviced by the
                    // device queue, which cannot happen under the cache
                    // borrow — collect it for after the loop.
                    None => flash_hits.push(b),
                },
                None => misses.push(b),
            }
        }
    }
    if wait > SimTime::ZERO {
        h.sim.sleep(wait).await;
    }
    for &b in flash_hits.iter() {
        h.dev.read(b).await;
    }
    h.put_buf(flash_hits);
    if misses.is_empty() {
        h.put_buf(misses);
        return;
    }
    let n = misses.len() as u32;
    h.segment.transfer(Direction::ToServer, 0).await;
    h.filer.read_blocks(&misses).await;
    h.segment
        .transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
        .await;
    for &b in misses.iter() {
        unified_insert(h, b, false).await;
    }
    h.put_buf(misses);
}

// ---------------------------------------------------------------------------
// Write paths
// ---------------------------------------------------------------------------

/// Naive / lookaside write: into RAM, then onward per the tier policies.
async fn write_layered(h: &Rc<HostCtx>, op: &TraceOp) {
    for b in op.blocks() {
        let invalidated = h.invalidate_peers(b);
        if !op.warmup() {
            h.metrics.record_block_write(invalidated);
        }
        if h.has_ram() {
            ram_insert(h, b, true).await;
            match h.cfg.ram_policy {
                WritebackPolicy::WriteThrough => flush_ram_block(h, b).await,
                WritebackPolicy::AsyncWriteThrough => spawn_ram_flush(h, b),
                WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
            }
        } else if h.has_flash() && h.cfg.arch == Architecture::Naive {
            // No RAM tier: writes land directly in flash (§7.5's zero-RAM
            // configuration) and the flash policy governs.
            flash_insert(h, b, true).await;
        } else {
            // No cache at all (or lookaside without RAM): synchronous
            // write to the filer; lookaside additionally updates flash.
            flush_to_filer(h, b, FlushSource::InHand).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                flash_insert(h, b, false).await;
            }
        }
    }
}

/// Unified write: overwrite in place on a hit, else claim the LRU frame;
/// either way the block's frame medium sets the cost and its tier policy
/// governs the writeback.
async fn write_unified(h: &Rc<HostCtx>, op: &TraceOp) {
    for b in op.blocks() {
        let invalidated = h.invalidate_peers(b);
        if !op.warmup() {
            h.metrics.record_block_write(invalidated);
        }
        unified_insert(h, b, true).await;
    }
}

// ---------------------------------------------------------------------------
// Tier insert helpers (pay device time, handle dirty evictions)
// ---------------------------------------------------------------------------

/// Inserts a block into RAM, paying the RAM write latency. A dirty LRU
/// victim is written back synchronously first — this stall is the source of
/// the `none`-policy convoys ("synchronous evictions once the cache fills",
/// §7.1).
async fn ram_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool) {
    h.sim.sleep(h.cfg.ram_model.write).await;
    let outcome = h.ram.borrow_mut().insert(addr, dirty);
    if let InsertOutcome::InsertedEvicting(ev) = outcome {
        if ev.dirty {
            evicted_ram_writeback(h, ev.addr).await;
        }
    }
}

/// Writes an evicted dirty RAM block down a level: to flash in the naive
/// architecture, directly to the filer in lookaside (updating flash after).
async fn evicted_ram_writeback(h: &Rc<HostCtx>, addr: BlockAddr) {
    match h.cfg.arch {
        Architecture::Naive if h.has_flash() => {
            flash_insert(h, addr, true).await;
        }
        _ => {
            // Lookaside, or naive with no flash tier: straight to the filer.
            flush_to_filer(h, addr, FlushSource::InHand).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                flash_insert(h, addr, false).await;
            }
        }
    }
}

/// Inserts a block into flash, paying the flash write latency. Evicting a
/// dirty flash victim forces a synchronous writeback to the filer. If the
/// inserted block is dirty, the flash writeback policy reacts.
async fn flash_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool) {
    h.dev.write(addr).await;
    let outcome = h.flash.borrow_mut().insert(addr, dirty);
    if let InsertOutcome::InsertedEvicting(ev) = outcome {
        if ev.dirty {
            flush_to_filer(h, ev.addr, FlushSource::Flash).await;
        }
    }
    if dirty {
        on_flash_dirtied(h, addr).await;
    }
}

/// Applies the flash writeback policy to a block that just became dirty in
/// flash.
async fn on_flash_dirtied(h: &Rc<HostCtx>, addr: BlockAddr) {
    match h.cfg.flash_policy {
        WritebackPolicy::WriteThrough => {
            // Blocking write-through; the payload is still in hand.
            h.flash.borrow_mut().mark_clean(addr);
            flush_to_filer(h, addr, FlushSource::InHand).await;
        }
        WritebackPolicy::AsyncWriteThrough => spawn_flash_flush(h, addr),
        WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
    }
}

/// Inserts into the unified cache: pays the landing medium's write cost,
/// flushes a dirty victim, and applies the landing tier's policy when the
/// block is dirty.
async fn unified_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool) {
    let ins = h
        .unified
        .as_ref()
        .expect("unified cache")
        .borrow_mut()
        .insert(addr, dirty);
    match ins.medium {
        Medium::Ram => h.sim.sleep(h.cfg.ram_model.write).await,
        Medium::Flash => h.dev.write(addr).await,
    }
    if let Some(ev) = ins.evicted {
        if ev.dirty {
            let src = match ev.medium {
                Medium::Ram => FlushSource::InHand,
                Medium::Flash => FlushSource::Flash,
            };
            flush_to_filer(h, ev.addr, src).await;
        }
    }
    if dirty {
        let policy = match ins.medium {
            Medium::Ram => h.cfg.ram_policy,
            Medium::Flash => h.cfg.flash_policy,
        };
        match policy {
            WritebackPolicy::WriteThrough => {
                h.unified
                    .as_ref()
                    .expect("unified cache")
                    .borrow_mut()
                    .mark_clean(addr);
                flush_to_filer(h, addr, FlushSource::InHand).await;
            }
            WritebackPolicy::AsyncWriteThrough => spawn_unified_flush(h, addr, ins.medium),
            WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Flush machinery
// ---------------------------------------------------------------------------

/// Sends one dirty block to the filer: data packet out, buffered filer
/// write, acknowledgement back. Flushing from flash first pays a flash read
/// (the data must come off the device) when configured.
async fn flush_to_filer(h: &Rc<HostCtx>, addr: BlockAddr, src: FlushSource) {
    if src == FlushSource::Flash && h.cfg.charge_flash_read_on_writeback {
        // The data must come off the device before it can be sent.
        h.dev.read(addr).await;
    }
    h.segment.transfer(Direction::ToServer, BLOCK_SIZE).await;
    h.filer.write(1).await;
    h.segment.transfer(Direction::FromServer, 0).await;
}

/// Flushes one dirty RAM block down a level (the RAM tier's writeback
/// unit): naive writes it to flash; lookaside writes it to the filer and
/// then updates the (never-dirty) flash copy.
pub(crate) async fn flush_ram_block(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.ram.borrow_mut().mark_clean(addr) {
        return; // evicted or invalidated since queued
    }
    match h.cfg.arch {
        Architecture::Naive if h.has_flash() => {
            flash_insert(h, addr, true).await;
        }
        _ => {
            flush_to_filer(h, addr, FlushSource::InHand).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                // "The flash is updated after the file server and never
                // contains dirty data." (§3.3)
                flash_insert(h, addr, false).await;
            }
        }
    }
}

/// Flushes one dirty flash block to the filer.
pub(crate) async fn flush_flash_block(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.flash.borrow_mut().mark_clean(addr) {
        return;
    }
    flush_to_filer(h, addr, FlushSource::Flash).await;
}

/// Flushes one dirty unified frame to the filer.
pub(crate) async fn flush_unified_block(h: &Rc<HostCtx>, addr: BlockAddr) {
    let unified = h.unified.as_ref().expect("unified cache");
    let medium = {
        let mut u = unified.borrow_mut();
        if !u.is_dirty(addr) {
            return;
        }
        let m = u.medium_of(addr).expect("dirty block is mapped");
        u.mark_clean(addr);
        m
    };
    let src = match medium {
        Medium::Ram => FlushSource::InHand,
        Medium::Flash => FlushSource::Flash,
    };
    flush_to_filer(h, addr, src).await;
}

/// Queues a detached asynchronous write-through flush for a RAM block.
/// Duplicate submissions for a block already being flushed are suppressed;
/// the worker's flush loop re-checks dirtiness so a re-dirty during flight
/// is not lost. No allocation once the host's worker pool has converged
/// (see `crate::flush`).
fn spawn_ram_flush(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.ram_flush_pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Ram,
        },
    );
}

/// Queues a detached asynchronous write-through flush for a flash block.
fn spawn_flash_flush(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.flash_flush_pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Flash,
        },
    );
}

/// Queues a detached asynchronous write-through flush for a unified frame.
fn spawn_unified_flush(h: &Rc<HostCtx>, addr: BlockAddr, medium: Medium) {
    let pending = match medium {
        Medium::Ram => &h.ram_flush_pending,
        Medium::Flash => &h.flash_flush_pending,
    };
    if !pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Unified(medium),
        },
    );
}

// ---------------------------------------------------------------------------
// Syncer daemons (periodic policies)
// ---------------------------------------------------------------------------

/// Which tier a syncer batch flushes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlushTier {
    Ram,
    Flash,
    Unified,
}

/// Flushes a batch of dirty blocks keeping up to `syncer_window` I/Os in
/// flight. The syncer is one thread issuing asynchronous I/O: the wire —
/// not the flush loop — is the writeback bottleneck, which is what lets
/// "any reasonable writeback policy maintain an ample supply of clean
/// blocks" (§7.1).
async fn flush_batch(h: &Rc<HostCtx>, blocks: &[BlockAddr], tier: FlushTier) {
    let window = h.cfg.syncer_window.max(1);
    let mut handles = Vec::with_capacity(window.min(blocks.len()));
    for chunk in blocks.chunks(window) {
        handles.extend(chunk.iter().map(|b| {
            let h2 = Rc::clone(h);
            let b = *b;
            h.sim.spawn(async move {
                match tier {
                    FlushTier::Ram => flush_ram_block(&h2, b).await,
                    FlushTier::Flash => flush_flash_block(&h2, b).await,
                    FlushTier::Unified => flush_unified_block(&h2, b).await,
                }
            })
        }));
        for handle in handles.drain(..) {
            handle.await;
        }
    }
}

/// Periodic RAM-tier syncer: every `period`, flush every block that is
/// dirty in RAM ("dirty data remains in the cache until a syncer thread
/// flushes the data back", §3.5). The dirty-set snapshot reuses one
/// scratch buffer across ticks instead of allocating per tick.
pub(crate) async fn ram_syncer(h: Rc<HostCtx>, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.ram.borrow().dirty_blocks_into(&mut dirty);
        flush_batch(&h, &dirty, FlushTier::Ram).await;
    }
}

/// Periodic flash-tier syncer (naive architecture).
pub(crate) async fn flash_syncer(h: Rc<HostCtx>, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.flash.borrow().dirty_blocks_into(&mut dirty);
        flush_batch(&h, &dirty, FlushTier::Flash).await;
    }
}

/// Periodic unified-tier syncer for one medium.
pub(crate) async fn unified_syncer(h: Rc<HostCtx>, medium: Medium, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.unified
            .as_ref()
            .expect("unified cache")
            .borrow()
            .dirty_blocks_of_into(medium, &mut dirty);
        flush_batch(&h, &dirty, FlushTier::Unified).await;
    }
}
