//! The simulation engine: per-architecture read/write paths, writeback
//! machinery, and syncer daemons.
//!
//! Every path here follows the paper's §3 design descriptions; quotes in
//! comments mark the load-bearing sentences.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use fcache_cache::{InsertOutcome, Medium};
use fcache_des::SimTime;
use fcache_net::Direction;
use fcache_remote::RemoteStore;
use fcache_types::{BlockAddr, FaultError, FaultKind, OpKind, Phase, TraceOp, BLOCK_SIZE};

use crate::arch::Architecture;
use crate::flush::{self, FlushReq, FlushTarget};
use crate::host::{HostCtx, RemoteCtx};
use crate::policy::WritebackPolicy;
use crate::robust::{DegradedPolicy, FaultCtx, RobustnessState};
use crate::telemetry::{enter, OpSpan};

/// Where the data being flushed currently lives, which decides what the
/// flush costs before the network leg.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlushSource {
    /// Data is in RAM or "in hand" (write-through with the payload still in
    /// the requester's context): only the wire + filer cost applies.
    InHand,
    /// Data must first be read off the flash device.
    Flash,
}

/// Executes one trace operation, returning its application latency.
pub(crate) async fn execute_op(h: &Rc<HostCtx>, op: &TraceOp) -> SimTime {
    if !op.warmup() {
        h.maybe_end_warmup();
    }
    let t0 = h.sim.now();
    // A span exists only for measured ops on telemetry-enabled runs; the
    // default threads `None` through every hook below, which is a no-op —
    // the literal pre-telemetry path (PERF.md invariant 12).
    let span = h
        .telemetry
        .as_ref()
        .filter(|_| !op.warmup())
        .map(|_| OpSpan::new(t0));
    let sp = span.as_ref();
    match (op.kind(), h.cfg.arch) {
        (OpKind::Read, Architecture::Unified) => read_unified(h, op, sp).await,
        (OpKind::Read, _) => read_layered(h, op, sp).await,
        (OpKind::Write, Architecture::Unified) => write_unified(h, op, sp).await,
        (OpKind::Write, _) => write_layered(h, op, sp).await,
    }
    let latency = h.sim.now() - t0;
    if !op.warmup() {
        h.metrics.record_op(op.kind(), latency, op.nblocks());
        if let (Some(t), Some(sp)) = (&h.telemetry, sp) {
            t.complete_op(h, op, sp, h.sim.now());
        }
    }
    latency
}

// ---------------------------------------------------------------------------
// Read paths
// ---------------------------------------------------------------------------

/// Naive / lookaside read: RAM, then flash, then the filer; fetched blocks
/// are "first placed in flash, then into RAM" (§3.2).
async fn read_layered(h: &Rc<HostCtx>, op: &TraceOp, sp: Option<&OpSpan>) {
    // RAM stage: hits pay the RAM read latency; misses fall through. The
    // miss/hit lists live in pooled buffers so the per-op path performs no
    // heap allocation after pool warmup.
    let mut ram_misses = h.take_buf();
    let mut wait = SimTime::ZERO;
    if h.has_ram() {
        let mut ram = h.ram.borrow_mut();
        for b in op.blocks() {
            if ram.lookup(b) {
                wait += h.cfg.ram_model.read;
                if h.cfg.inclusive_promotion && h.has_flash() {
                    // Keep the flash LRU order a superset of RAM recency so
                    // the subset property holds without management (§3.3).
                    h.flash.borrow_mut().promote(b);
                }
            } else {
                ram_misses.push(b);
            }
        }
    } else {
        ram_misses.extend(op.blocks());
    }
    if wait > SimTime::ZERO {
        h.sim.sleep(wait).await;
    }
    if ram_misses.is_empty() {
        if let Some(s) = sp {
            s.note_blocks(u64::from(op.nblocks()), 0);
        }
        h.put_buf(ram_misses);
        return;
    }

    // Flash stage.
    let mut flash_hits = h.take_buf();
    let mut filer_misses = h.take_buf();
    if h.has_flash() {
        let mut flash = h.flash.borrow_mut();
        for b in &ram_misses {
            if flash.lookup(*b) {
                flash_hits.push(*b);
            } else {
                filer_misses.push(*b);
            }
        }
    } else {
        std::mem::swap(&mut filer_misses, &mut ram_misses);
    }
    // Device time for the flash hits goes through the timing service:
    // flat mode charges one combined sleep (as the paper's model always
    // did), SSD mode services each block through the bounded device queue.
    h.dev.read_batch(&flash_hits, sp).await;

    // Filer stage: "each I/O request uses one packet in each direction"
    // (§5) — one request covers every block this op still misses.
    let miss_count = filer_misses.len() as u64;
    if !filer_misses.is_empty() {
        let fetched = if h.remote.is_some() {
            remote_fetch(h, &filer_misses, sp).await
        } else {
            match &h.fault {
                None => {
                    let n = filer_misses.len() as u32;
                    enter(sp, &h.sim, Phase::Net);
                    h.segment.transfer(Direction::ToServer, 0).await;
                    enter(sp, &h.sim, Phase::Filer);
                    h.filer.read_blocks(&filer_misses).await;
                    enter(sp, &h.sim, Phase::Net);
                    h.segment
                        .transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
                        .await;
                    true
                }
                Some(f) => fetch_from_filer(h, &Rc::clone(f), &filer_misses, sp).await,
            }
        };
        if fetched {
            if h.has_flash() && h.cfg.populate_flash_on_read {
                for &b in filer_misses.iter() {
                    flash_insert(h, b, false, sp).await;
                }
            }
        } else {
            // Failed-fast miss: no data arrived, so nothing to cache.
            filer_misses.clear();
        }
    }
    if let Some(s) = sp {
        // `filer_misses` was cleared on a failed fetch, so its length is
        // the blocks that actually arrived from the backend; failed blocks
        // count as neither hit nor fetch.
        s.note_blocks(
            u64::from(op.nblocks()) - miss_count,
            filer_misses.len() as u64,
        );
    }

    // Fill RAM with everything that missed it.
    if h.has_ram() {
        for &b in flash_hits.iter().chain(filer_misses.iter()) {
            ram_insert(h, b, false, sp).await;
        }
    }
    h.put_buf(ram_misses);
    h.put_buf(flash_hits);
    h.put_buf(filer_misses);
}

/// Unified read: one lookup against the single LRU chain; hits pay the
/// latency of whichever medium the frame lives in.
async fn read_unified(h: &Rc<HostCtx>, op: &TraceOp, sp: Option<&OpSpan>) {
    let unified = h
        .unified
        .as_ref()
        .expect("unified arch has a unified cache");
    let mut wait = SimTime::ZERO;
    let mut misses = h.take_buf();
    let mut flash_hits = h.take_buf();
    {
        let mut u = unified.borrow_mut();
        for b in op.blocks() {
            match u.lookup(b) {
                Some(Medium::Ram) => wait += h.cfg.ram_model.read,
                Some(Medium::Flash) => match h.dev.try_flat_read(b) {
                    // Flat timing folds into the one combined sleep below,
                    // exactly as before the device service existed.
                    Some(lat) => wait += lat,
                    // Queue-aware timing: the hit must be serviced by the
                    // device queue, which cannot happen under the cache
                    // borrow — collect it for after the loop.
                    None => flash_hits.push(b),
                },
                None => misses.push(b),
            }
        }
    }
    if wait > SimTime::ZERO {
        h.sim.sleep(wait).await;
    }
    // Queue-aware flash hits overlap through the NCQ as one batch, the
    // same as the layered read path.
    h.dev.read_batch(&flash_hits, sp).await;
    h.put_buf(flash_hits);
    if misses.is_empty() {
        if let Some(s) = sp {
            s.note_blocks(u64::from(op.nblocks()), 0);
        }
        h.put_buf(misses);
        return;
    }
    let miss_count = misses.len() as u64;
    let fetched = if h.remote.is_some() {
        remote_fetch(h, &misses, sp).await
    } else {
        match &h.fault {
            None => {
                let n = misses.len() as u32;
                enter(sp, &h.sim, Phase::Net);
                h.segment.transfer(Direction::ToServer, 0).await;
                enter(sp, &h.sim, Phase::Filer);
                h.filer.read_blocks(&misses).await;
                enter(sp, &h.sim, Phase::Net);
                h.segment
                    .transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
                    .await;
                true
            }
            Some(f) => fetch_from_filer(h, &Rc::clone(f), &misses, sp).await,
        }
    };
    if let Some(s) = sp {
        s.note_blocks(
            u64::from(op.nblocks()) - miss_count,
            if fetched { miss_count } else { 0 },
        );
    }
    if fetched {
        for &b in misses.iter() {
            unified_insert(h, b, false, sp).await;
        }
    }
    h.put_buf(misses);
}

// ---------------------------------------------------------------------------
// Write paths
// ---------------------------------------------------------------------------

/// Naive / lookaside write: into RAM, then onward per the tier policies.
async fn write_layered(h: &Rc<HostCtx>, op: &TraceOp, sp: Option<&OpSpan>) {
    for b in op.blocks() {
        let invalidated = h.invalidate_peers(b);
        if !op.warmup() {
            h.metrics.record_block_write(invalidated);
        }
        if h.has_ram() {
            ram_insert(h, b, true, sp).await;
            match h.cfg.ram_policy {
                WritebackPolicy::WriteThrough => {
                    if filer_down(h) {
                        // Degraded mode: the filer is unreachable, so the
                        // blocking write-through falls back to writeback-style
                        // buffering — the flush queue holds the block and
                        // drains once the outage clears (§ISSUE 6).
                        buffered_write(h);
                        spawn_ram_flush(h, b);
                    } else {
                        flush_ram_block(h, b, sp).await;
                    }
                }
                WritebackPolicy::AsyncWriteThrough => spawn_ram_flush(h, b),
                WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
            }
        } else if h.has_flash() && h.cfg.arch == Architecture::Naive {
            // No RAM tier: writes land directly in flash (§7.5's zero-RAM
            // configuration) and the flash policy governs.
            flash_insert(h, b, true, sp).await;
        } else {
            // No cache at all (or lookaside without RAM): synchronous
            // write to the filer; lookaside additionally updates flash.
            flush_to_filer(h, b, FlushSource::InHand, sp).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                flash_insert(h, b, false, sp).await;
            }
        }
    }
}

/// Unified write: overwrite in place on a hit, else claim the LRU frame;
/// either way the block's frame medium sets the cost and its tier policy
/// governs the writeback.
async fn write_unified(h: &Rc<HostCtx>, op: &TraceOp, sp: Option<&OpSpan>) {
    for b in op.blocks() {
        let invalidated = h.invalidate_peers(b);
        if !op.warmup() {
            h.metrics.record_block_write(invalidated);
        }
        unified_insert(h, b, true, sp).await;
    }
}

// ---------------------------------------------------------------------------
// Tier insert helpers (pay device time, handle dirty evictions)
// ---------------------------------------------------------------------------

/// Inserts a block into RAM, paying the RAM write latency. A dirty LRU
/// victim is written back synchronously first — this stall is the source of
/// the `none`-policy convoys ("synchronous evictions once the cache fills",
/// §7.1).
async fn ram_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool, sp: Option<&OpSpan>) {
    enter(sp, &h.sim, Phase::CacheProbe);
    h.sim.sleep(h.cfg.ram_model.write).await;
    let outcome = h.ram.borrow_mut().insert(addr, dirty);
    if let InsertOutcome::InsertedEvicting(ev) = outcome {
        if ev.dirty {
            evicted_ram_writeback(h, ev.addr, sp).await;
        }
    }
}

/// Writes an evicted dirty RAM block down a level: to flash in the naive
/// architecture, directly to the filer in lookaside (updating flash after).
async fn evicted_ram_writeback(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    match h.cfg.arch {
        Architecture::Naive if h.has_flash() => {
            flash_insert(h, addr, true, sp).await;
        }
        _ => {
            // Lookaside, or naive with no flash tier: straight to the filer.
            flush_to_filer(h, addr, FlushSource::InHand, sp).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                flash_insert(h, addr, false, sp).await;
            }
        }
    }
}

/// Inserts a block into flash, paying the flash write latency. Evicting a
/// dirty flash victim forces a synchronous writeback to the filer. If the
/// inserted block is dirty, the flash writeback policy reacts.
async fn flash_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool, sp: Option<&OpSpan>) {
    h.dev.write(addr, sp).await;
    let outcome = h.flash.borrow_mut().insert(addr, dirty);
    if let InsertOutcome::InsertedEvicting(ev) = outcome {
        if ev.dirty {
            flush_to_filer(h, ev.addr, FlushSource::Flash, sp).await;
        }
    }
    if dirty {
        on_flash_dirtied(h, addr, sp).await;
    }
}

/// Applies the flash writeback policy to a block that just became dirty in
/// flash.
async fn on_flash_dirtied(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    match h.cfg.flash_policy {
        WritebackPolicy::WriteThrough => {
            if filer_down(h) {
                // Degraded mode: keep the block dirty in flash and let the
                // flush queue drain it after the outage.
                buffered_write(h);
                spawn_flash_flush(h, addr);
                return;
            }
            // Blocking write-through; the payload is still in hand.
            h.flash.borrow_mut().mark_clean(addr);
            flush_to_filer(h, addr, FlushSource::InHand, sp).await;
        }
        WritebackPolicy::AsyncWriteThrough => spawn_flash_flush(h, addr),
        WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
    }
}

/// Inserts into the unified cache: pays the landing medium's write cost,
/// flushes a dirty victim, and applies the landing tier's policy when the
/// block is dirty.
async fn unified_insert(h: &Rc<HostCtx>, addr: BlockAddr, dirty: bool, sp: Option<&OpSpan>) {
    let ins = h
        .unified
        .as_ref()
        .expect("unified cache")
        .borrow_mut()
        .insert(addr, dirty);
    match ins.medium {
        Medium::Ram => {
            enter(sp, &h.sim, Phase::CacheProbe);
            h.sim.sleep(h.cfg.ram_model.write).await;
        }
        Medium::Flash => h.dev.write(addr, sp).await,
    }
    if let Some(ev) = ins.evicted {
        if ev.dirty {
            let src = match ev.medium {
                Medium::Ram => FlushSource::InHand,
                Medium::Flash => FlushSource::Flash,
            };
            flush_to_filer(h, ev.addr, src, sp).await;
        }
    }
    if dirty {
        let policy = match ins.medium {
            Medium::Ram => h.cfg.ram_policy,
            Medium::Flash => h.cfg.flash_policy,
        };
        match policy {
            WritebackPolicy::WriteThrough => {
                if filer_down(h) {
                    buffered_write(h);
                    spawn_unified_flush(h, addr, ins.medium);
                    return;
                }
                h.unified
                    .as_ref()
                    .expect("unified cache")
                    .borrow_mut()
                    .mark_clean(addr);
                flush_to_filer(h, addr, FlushSource::InHand, sp).await;
            }
            WritebackPolicy::AsyncWriteThrough => spawn_unified_flush(h, addr, ins.medium),
            WritebackPolicy::Periodic(_) | WritebackPolicy::None => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Flush machinery
// ---------------------------------------------------------------------------

/// Sends one dirty block to the filer: data packet out, buffered filer
/// write, acknowledgement back. Flushing from flash first pays a flash read
/// (the data must come off the device) when configured.
async fn flush_to_filer(h: &Rc<HostCtx>, addr: BlockAddr, src: FlushSource, sp: Option<&OpSpan>) {
    if src == FlushSource::Flash && h.cfg.charge_flash_read_on_writeback {
        // The data must come off the device before it can be sent.
        h.dev.read(addr, sp).await;
    }
    if h.remote.is_some() {
        return remote_write_all(h, addr, sp).await;
    }
    let Some(f) = h.fault.as_ref().map(Rc::clone) else {
        enter(sp, &h.sim, Phase::Net);
        h.segment.transfer(Direction::ToServer, BLOCK_SIZE).await;
        enter(sp, &h.sim, Phase::Filer);
        h.filer.write(1).await;
        enter(sp, &h.sim, Phase::Net);
        h.segment.transfer(Direction::FromServer, 0).await;
        return;
    };
    // Dirty data is never dropped: a flush retries without bound (the
    // backoff exponent is capped), parking through outages regardless of
    // the degraded policy — durability over latency.
    let mut attempt: u32 = 0;
    loop {
        if park_through_outage(h, &f, sp).await {
            continue;
        }
        let sent = async {
            enter(sp, &h.sim, Phase::Net);
            h.segment
                .try_transfer(Direction::ToServer, BLOCK_SIZE)
                .await?;
            enter(sp, &h.sim, Phase::Filer);
            h.filer.try_write(1).await?;
            enter(sp, &h.sim, Phase::Net);
            h.segment.try_transfer(Direction::FromServer, 0).await
        }
        .await;
        match sent {
            Ok(()) => return,
            Err(_) => {
                attempt += 1;
                failed_attempt(h, &f, attempt, sp).await;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-mode fetch / retry machinery (see `crate::robust`)
// ---------------------------------------------------------------------------

/// True when the filer fault schedule has an outage open right now. Always
/// false without a fault plan, so write-through degradation never engages
/// on fault-free runs.
fn filer_down(h: &HostCtx) -> bool {
    h.fault
        .as_ref()
        .is_some_and(|f| f.set.filer.outage_until(h.sim.now().as_nanos()).is_some())
}

/// Counts one write-through write degraded to buffered writeback.
fn buffered_write(h: &HostCtx) {
    if let Some(f) = &h.fault {
        RobustnessState::bump(&f.state.buffered_writes);
    }
}

/// If the filer is in outage, sleeps until it clears and returns true
/// (counting the parked op); returns false when the filer is up.
async fn park_through_outage(h: &Rc<HostCtx>, f: &Rc<FaultCtx>, sp: Option<&OpSpan>) -> bool {
    let Some(clear_ns) = f.set.filer.outage_until(h.sim.now().as_nanos()) else {
        return false;
    };
    RobustnessState::bump(&f.state.queued_ops);
    let wait = SimTime::from_nanos(clear_ns).saturating_sub(h.sim.now());
    enter(sp, &h.sim, Phase::DegradedPark);
    h.sim.sleep(wait.max(SimTime::from_nanos(1))).await;
    true
}

/// Charges one failed exchange attempt: the per-op timeout, then the
/// jittered exponential backoff before the retry.
async fn failed_attempt(h: &Rc<HostCtx>, f: &Rc<FaultCtx>, attempt: u32, sp: Option<&OpSpan>) {
    RobustnessState::bump(&f.state.timeouts);
    enter(sp, &h.sim, Phase::RetryBackoff);
    h.sim.sleep(f.op_timeout).await;
    RobustnessState::bump(&f.state.retries);
    if let Some(s) = sp {
        s.note_retry();
    }
    h.sim.sleep(f.backoff(attempt)).await;
}

/// The clause text of the filer outage open at `now_ns` (for failure
/// attribution when a miss fails fast).
fn outage_clause(f: &FaultCtx, now_ns: u64) -> String {
    f.set
        .filer
        .windows()
        .iter()
        .find(|w| w.kind == FaultKind::Outage && w.start_ns <= now_ns && now_ns < w.end_ns)
        .map(|w| w.clause.clone())
        .unwrap_or_else(|| "filer:outage".to_string())
}

/// One full miss exchange against the filer through the fault seams:
/// request packet out, filer read service, payload packet back. Any leg
/// can fail transiently; a failed leg consumes no service time.
async fn try_exchange(
    h: &Rc<HostCtx>,
    blocks: &[BlockAddr],
    sp: Option<&OpSpan>,
) -> Result<(), FaultError> {
    let n = blocks.len() as u32;
    enter(sp, &h.sim, Phase::Net);
    h.segment.try_transfer(Direction::ToServer, 0).await?;
    enter(sp, &h.sim, Phase::Filer);
    h.filer.try_read_blocks(blocks).await?;
    enter(sp, &h.sim, Phase::Net);
    h.segment
        .try_transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
        .await
}

/// Fetches a miss list from the filer under fault injection: outages
/// degrade per [`DegradedPolicy`] (cache hits keep serving either way),
/// transient failures retry with timeout + jittered exponential backoff
/// up to `max_retries`. Returns whether the data ultimately arrived.
async fn fetch_from_filer(
    h: &Rc<HostCtx>,
    f: &Rc<FaultCtx>,
    blocks: &[BlockAddr],
    sp: Option<&OpSpan>,
) -> bool {
    let now = h.sim.now().as_nanos();
    let widx = f.acct.window_index_at(now);
    f.state.window_op(widx);
    let mut attempt: u32 = 0;
    loop {
        let now = h.sim.now().as_nanos();
        if f.set.filer.outage_until(now).is_some() {
            match f.cfg.degraded {
                DegradedPolicy::Queue => {
                    // Availability first: park the miss until the filer
                    // returns, then fetch. Hits never reach this path.
                    park_through_outage(h, f, sp).await;
                    continue;
                }
                DegradedPolicy::FailFast | DegradedPolicy::Strict => {
                    f.state.op_failed(&outage_clause(f, now));
                    return false;
                }
            }
        }
        match try_exchange(h, blocks, sp).await {
            Ok(()) => {
                f.state.window_ok(widx);
                return true;
            }
            Err(e) => {
                if attempt >= f.cfg.max_retries {
                    RobustnessState::bump(&f.state.timeouts);
                    enter(sp, &h.sim, Phase::RetryBackoff);
                    h.sim.sleep(f.op_timeout).await;
                    f.state.op_failed(&e.clause);
                    return false;
                }
                attempt += 1;
                failed_attempt(h, f, attempt, sp).await;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded remote tier (read-any / write-all, hedging, failover)
// ---------------------------------------------------------------------------

/// Fetches a miss list through the sharded remote tier: the list is
/// partitioned by primary shard and each group is served **read-any**
/// across its replica ring (optionally hedged). Returns whether every
/// group's data arrived.
async fn remote_fetch(h: &Rc<HostCtx>, blocks: &[BlockAddr], sp: Option<&OpSpan>) -> bool {
    let router = h.remote.as_ref().expect("remote engaged").store.router();
    // Window accounting mirrors `fetch_from_filer`, against the backend
    // accounting schedule: filer-wide clauses and shard-local clauses each
    // contribute one distinct window, so availability-per-window covers a
    // single shard's outage as well as a fleet-wide one.
    let widx = h.fault.as_ref().map(|f| {
        let w = f.acct.window_index_at(h.sim.now().as_nanos());
        f.state.window_op(w);
        w
    });
    let mut ok = true;
    let mut group = h.take_buf();
    for k in 0..router.shards() {
        group.clear();
        group.extend(blocks.iter().copied().filter(|b| router.primary(*b) == k));
        if !group.is_empty() && !fetch_group(h, k, &group, sp).await {
            ok = false;
        }
    }
    h.put_buf(group);
    if ok {
        if let Some(f) = &h.fault {
            f.state
                .window_ok(widx.expect("widx set when fault ctx exists"));
        }
    }
    ok
}

/// Serves one primary-shard group: pick the first live replica in ring
/// order (counting a failover when it is not the primary), optionally
/// hedge against the next live one, and retry with timeout + jittered
/// backoff on transient failures. A whole-ring outage degrades per
/// [`DegradedPolicy`], exactly like the single-filer path.
async fn fetch_group(
    h: &Rc<HostCtx>,
    primary: u16,
    blocks: &[BlockAddr],
    sp: Option<&OpSpan>,
) -> bool {
    let r = h.remote.as_ref().expect("remote engaged");
    let router = r.store.router();
    let ring = |j: u16| (primary + j) % router.shards();
    let mut attempt: u32 = 0;
    loop {
        let now = h.sim.now().as_nanos();
        let first = (0..router.replicas())
            .map(ring)
            .find(|&s| r.store.live_at(s, now));
        let Some(first) = first else {
            // The whole replica set is down: no replica can serve. Outages
            // only exist under a fault plan, so the fault ctx is present.
            let f = h.fault.as_ref().expect("outages require a fault plan");
            match f.cfg.degraded {
                DegradedPolicy::Queue => {
                    RobustnessState::bump(&f.state.queued_ops);
                    let clear = (0..router.replicas())
                        .map(ring)
                        .filter_map(|s| r.store.outage_until(s, now))
                        .min()
                        .unwrap_or(now);
                    let wait = SimTime::from_nanos(clear).saturating_sub(h.sim.now());
                    enter(sp, &h.sim, Phase::DegradedPark);
                    h.sim.sleep(wait.max(SimTime::from_nanos(1))).await;
                    continue;
                }
                DegradedPolicy::FailFast | DegradedPolicy::Strict => {
                    f.state.op_failed(&shard_outage_clause(r, primary, now));
                    return false;
                }
            }
        };
        // Hedge when configured and a second live replica exists to race.
        let hedge = r.hedge_ns.and_then(|d| {
            (0..router.replicas())
                .map(ring)
                .find(|&s| s != first && r.store.live_at(s, now))
                .map(|s| (s, d))
        });
        let served = match hedge {
            Some((second, delay_ns)) => {
                hedged_exchange(h, first, second, delay_ns, blocks, sp).await
            }
            None => shard_exchange(h, first, blocks, sp).await.map(|()| first),
        };
        match served {
            Ok(winner) => {
                if winner != primary {
                    r.store.note_failover();
                }
                return true;
            }
            Err(e) => {
                let f = h.fault.as_ref().expect("fault-free exchanges cannot fail");
                if attempt >= f.cfg.max_retries {
                    RobustnessState::bump(&f.state.timeouts);
                    enter(sp, &h.sim, Phase::RetryBackoff);
                    h.sim.sleep(f.op_timeout).await;
                    f.state.op_failed(&e.clause);
                    return false;
                }
                attempt += 1;
                let f = Rc::clone(f);
                failed_attempt(h, &f, attempt, sp).await;
            }
        }
    }
}

/// One full miss exchange against shard `shard` over this host's segment
/// to it. Fault-free hosts use the plain (infallible) legs so the exchange
/// shape matches the single-filer path exactly.
async fn shard_exchange(
    h: &Rc<HostCtx>,
    shard: u16,
    blocks: &[BlockAddr],
    sp: Option<&OpSpan>,
) -> Result<(), FaultError> {
    let r = h.remote.as_ref().expect("remote engaged");
    let seg = &r.segments[usize::from(shard)];
    let filer = r.store.filer(shard);
    let n = blocks.len() as u32;
    if h.fault.is_some() {
        enter(sp, &h.sim, Phase::Net);
        seg.try_transfer(Direction::ToServer, 0).await?;
        enter(sp, &h.sim, Phase::Filer);
        filer.try_read_blocks(blocks).await?;
        enter(sp, &h.sim, Phase::Net);
        seg.try_transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
            .await
    } else {
        enter(sp, &h.sim, Phase::Net);
        seg.transfer(Direction::ToServer, 0).await;
        enter(sp, &h.sim, Phase::Filer);
        filer.read_blocks(blocks).await;
        enter(sp, &h.sim, Phase::Net);
        seg.transfer(Direction::FromServer, u64::from(n) * BLOCK_SIZE)
            .await;
        Ok(())
    }
}

/// Shared state of one hedged-read race (see [`hedged_exchange`]).
struct RaceState {
    winner: Cell<Option<u16>>,
    pending: Cell<u8>,
    error: RefCell<Option<FaultError>>,
    waker: RefCell<Option<Waker>>,
}

impl RaceState {
    /// Records one arm's result; returns whether this arm won the race.
    fn arm_done(&self, shard: u16, result: Result<(), FaultError>) -> bool {
        self.pending.set(self.pending.get() - 1);
        let mut won = false;
        match result {
            Ok(()) => {
                if self.winner.get().is_none() {
                    self.winner.set(Some(shard));
                    won = true;
                }
            }
            Err(e) => {
                let mut slot = self.error.borrow_mut();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        self.maybe_wake();
        won
    }

    /// An arm that never launched (the race was decided first).
    fn arm_skipped(&self) {
        self.pending.set(self.pending.get() - 1);
        self.maybe_wake();
    }

    fn maybe_wake(&self) {
        if self.winner.get().is_some() || self.pending.get() == 0 {
            if let Some(w) = self.waker.borrow_mut().take() {
                w.wake();
            }
        }
    }
}

/// Resolves at the first arm success — the race's point: the op continues
/// at the winner's latency while the loser finishes in the background —
/// or when every arm has finished without one.
struct RaceDone(Rc<RaceState>);

impl Future for RaceDone {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.0.winner.get().is_some() || self.0.pending.get() == 0 {
            return Poll::Ready(());
        }
        *self.0.waker.borrow_mut() = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Hedged read: send to `first` immediately; if it has not answered within
/// `delay_ns`, duplicate the request to `second` and take whichever
/// answers first. The late response is not awaited — its shard keeps
/// servicing it in the background (counted as a cancelled hedge when it
/// does arrive after losing).
async fn hedged_exchange(
    h: &Rc<HostCtx>,
    first: u16,
    second: u16,
    delay_ns: u64,
    blocks: &[BlockAddr],
    sp: Option<&OpSpan>,
) -> Result<u16, FaultError> {
    let state = Rc::new(RaceState {
        winner: Cell::new(None),
        pending: Cell::new(2),
        error: RefCell::new(None),
        waker: RefCell::new(None),
    });

    // Primary arm: the ordinary exchange.
    {
        let h2 = Rc::clone(h);
        let st = Rc::clone(&state);
        let mut buf = h.take_buf();
        buf.extend_from_slice(blocks);
        h.sim.spawn_daemon(async move {
            let res = shard_exchange(&h2, first, &buf, None).await;
            h2.put_buf(buf);
            st.arm_done(first, res);
        });
    }
    // Hedge arm: waits out the hedge delay, then duplicates the request
    // unless the primary already answered.
    {
        let h2 = Rc::clone(h);
        let st = Rc::clone(&state);
        let mut buf = h.take_buf();
        buf.extend_from_slice(blocks);
        h.sim.spawn_daemon(async move {
            h2.sim.sleep(SimTime::from_nanos(delay_ns)).await;
            if st.winner.get().is_some() {
                // Primary answered inside the hedge delay: nothing sent.
                h2.put_buf(buf);
                st.arm_skipped();
                return;
            }
            let store = Rc::clone(&h2.remote.as_ref().expect("remote engaged").store);
            store.note_hedge_launched();
            let res = shard_exchange(&h2, second, &buf, None).await;
            h2.put_buf(buf);
            let arrived = res.is_ok();
            if st.arm_done(second, res) {
                store.note_hedge_won();
            } else if arrived {
                // The result arrived after the primary had already won.
                store.note_hedge_cancelled();
            }
        });
    }

    // The op's own time here is the race wait itself — neither arm's legs
    // run on the op task, so the whole interval is failover/hedge wait.
    enter(sp, &h.sim, Phase::Failover);
    RaceDone(Rc::clone(&state)).await;
    match state.winner.get() {
        Some(w) => Ok(w),
        None => Err(state.error.borrow_mut().take().unwrap_or(FaultError {
            clause: format!("shard{first}:outage"),
        })),
    }
}

/// The clause text of the outage open on `shard` at `now_ns` (for failure
/// attribution).
fn shard_outage_clause(r: &RemoteCtx, shard: u16, now_ns: u64) -> String {
    r.store
        .faults(shard)
        .windows()
        .iter()
        .find(|w| w.kind == FaultKind::Outage && w.start_ns <= now_ns && now_ns < w.end_ns)
        .map(|w| w.clause.clone())
        .unwrap_or_else(|| format!("shard{shard}:outage"))
}

/// **Write-all** through the sharded tier: the write acknowledges only
/// when every *live* replica has accepted it (fanned out concurrently, so
/// the ack latency is the slowest live replica, not the sum); replicas
/// down at write time are recorded as under-replicated for the recovery
/// pass. If the whole replica set is down the write parks until a replica
/// returns — an acknowledged write is never dropped, matching the
/// single-filer flush path's durability-over-latency stance.
async fn remote_write_all(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    let router = h.remote.as_ref().expect("remote engaged").store.router();
    loop {
        let r = h.remote.as_ref().expect("remote engaged");
        let now = h.sim.now().as_nanos();
        if router.replica_set(addr).any(|s| r.store.live_at(s, now)) {
            break;
        }
        let f = h.fault.as_ref().expect("outages require a fault plan");
        RobustnessState::bump(&f.state.queued_ops);
        let clear = router
            .replica_set(addr)
            .filter_map(|s| r.store.outage_until(s, now))
            .min()
            .unwrap_or(now);
        let wait = SimTime::from_nanos(clear).saturating_sub(h.sim.now());
        enter(sp, &h.sim, Phase::DegradedPark);
        h.sim.sleep(wait.max(SimTime::from_nanos(1))).await;
    }
    let mut ring = router.replica_set(addr);
    let first = ring.next().expect("replication factor >= 1");
    let mut handles = Vec::with_capacity(ring.len());
    for shard in ring {
        let h2 = Rc::clone(h);
        handles.push(
            h.sim
                .spawn(async move { write_one_replica(&h2, shard, addr, None).await }),
        );
    }
    write_one_replica(h, first, addr, sp).await;
    // Waiting out the slower replicas' spawned legs is ack fan-in: wire
    // time from the op's perspective.
    enter(sp, &h.sim, Phase::Net);
    for handle in handles {
        handle.await;
    }
}

/// Writes one block to one replica: unbounded retries on transient
/// failures (capped backoff exponent, like the flush path), but a replica
/// that is *down* — initially or mid-retry — is skipped and the copy is
/// recorded as under-replicated.
async fn write_one_replica(h: &Rc<HostCtx>, shard: u16, addr: BlockAddr, sp: Option<&OpSpan>) {
    let r = h.remote.as_ref().expect("remote engaged");
    let mut attempt: u32 = 0;
    loop {
        let now = h.sim.now().as_nanos();
        if !r.store.live_at(shard, now) {
            // This replica is down: ack without it and leave the copy for
            // recovery re-replication.
            r.store.mark_under_replicated(shard, addr, now);
            return;
        }
        let seg = &r.segments[usize::from(shard)];
        let filer = r.store.filer(shard);
        if h.fault.is_none() {
            enter(sp, &h.sim, Phase::Net);
            seg.transfer(Direction::ToServer, BLOCK_SIZE).await;
            enter(sp, &h.sim, Phase::Filer);
            filer.write(1).await;
            enter(sp, &h.sim, Phase::Net);
            seg.transfer(Direction::FromServer, 0).await;
            return;
        }
        let sent = async {
            enter(sp, &h.sim, Phase::Net);
            seg.try_transfer(Direction::ToServer, BLOCK_SIZE).await?;
            enter(sp, &h.sim, Phase::Filer);
            filer.try_write(1).await?;
            enter(sp, &h.sim, Phase::Net);
            seg.try_transfer(Direction::FromServer, 0).await
        }
        .await;
        match sent {
            Ok(()) => return,
            Err(_) => {
                attempt += 1;
                let f = Rc::clone(h.fault.as_ref().expect("checked above"));
                failed_attempt(h, &f, attempt, sp).await;
            }
        }
    }
}

/// Flushes one dirty RAM block down a level (the RAM tier's writeback
/// unit): naive writes it to flash; lookaside writes it to the filer and
/// then updates the (never-dirty) flash copy.
pub(crate) async fn flush_ram_block(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    if !h.ram.borrow_mut().mark_clean(addr) {
        return; // evicted or invalidated since queued
    }
    match h.cfg.arch {
        Architecture::Naive if h.has_flash() => {
            flash_insert(h, addr, true, sp).await;
        }
        _ => {
            flush_to_filer(h, addr, FlushSource::InHand, sp).await;
            if h.has_flash() && h.cfg.arch == Architecture::Lookaside {
                // "The flash is updated after the file server and never
                // contains dirty data." (§3.3)
                flash_insert(h, addr, false, sp).await;
            }
        }
    }
}

/// Flushes one dirty flash block to the filer.
pub(crate) async fn flush_flash_block(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    if !h.flash.borrow_mut().mark_clean(addr) {
        return;
    }
    flush_to_filer(h, addr, FlushSource::Flash, sp).await;
}

/// Flushes one dirty unified frame to the filer.
pub(crate) async fn flush_unified_block(h: &Rc<HostCtx>, addr: BlockAddr, sp: Option<&OpSpan>) {
    let unified = h.unified.as_ref().expect("unified cache");
    let medium = {
        let mut u = unified.borrow_mut();
        if !u.is_dirty(addr) {
            return;
        }
        let m = u.medium_of(addr).expect("dirty block is mapped");
        u.mark_clean(addr);
        m
    };
    let src = match medium {
        Medium::Ram => FlushSource::InHand,
        Medium::Flash => FlushSource::Flash,
    };
    flush_to_filer(h, addr, src, sp).await;
}

/// Queues a detached asynchronous write-through flush for a RAM block.
/// Duplicate submissions for a block already being flushed are suppressed;
/// the worker's flush loop re-checks dirtiness so a re-dirty during flight
/// is not lost. No allocation once the host's worker pool has converged
/// (see `crate::flush`).
fn spawn_ram_flush(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.ram_flush_pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Ram,
        },
    );
}

/// Queues a detached asynchronous write-through flush for a flash block.
fn spawn_flash_flush(h: &Rc<HostCtx>, addr: BlockAddr) {
    if !h.flash_flush_pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Flash,
        },
    );
}

/// Queues a detached asynchronous write-through flush for a unified frame.
fn spawn_unified_flush(h: &Rc<HostCtx>, addr: BlockAddr, medium: Medium) {
    let pending = match medium {
        Medium::Ram => &h.ram_flush_pending,
        Medium::Flash => &h.flash_flush_pending,
    };
    if !pending.borrow_mut().insert(addr.to_u64()) {
        return;
    }
    flush::submit(
        h,
        FlushReq {
            addr,
            target: FlushTarget::Unified(medium),
        },
    );
}

// ---------------------------------------------------------------------------
// Syncer daemons (periodic policies)
// ---------------------------------------------------------------------------

/// Which tier a syncer batch flushes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlushTier {
    Ram,
    Flash,
    Unified,
}

/// Flushes a batch of dirty blocks keeping up to `syncer_window` I/Os in
/// flight. The syncer is one thread issuing asynchronous I/O: the wire —
/// not the flush loop — is the writeback bottleneck, which is what lets
/// "any reasonable writeback policy maintain an ample supply of clean
/// blocks" (§7.1).
async fn flush_batch(h: &Rc<HostCtx>, blocks: &[BlockAddr], tier: FlushTier) {
    let window = h.cfg.syncer_window.max(1);
    let mut handles = Vec::with_capacity(window.min(blocks.len()));
    for chunk in blocks.chunks(window) {
        handles.extend(chunk.iter().map(|b| {
            let h2 = Rc::clone(h);
            let b = *b;
            h.sim.spawn(async move {
                match tier {
                    FlushTier::Ram => flush_ram_block(&h2, b, None).await,
                    FlushTier::Flash => flush_flash_block(&h2, b, None).await,
                    FlushTier::Unified => flush_unified_block(&h2, b, None).await,
                }
            })
        }));
        for handle in handles.drain(..) {
            handle.await;
        }
    }
}

/// Periodic RAM-tier syncer: every `period`, flush every block that is
/// dirty in RAM ("dirty data remains in the cache until a syncer thread
/// flushes the data back", §3.5). The dirty-set snapshot reuses one
/// scratch buffer across ticks instead of allocating per tick.
pub(crate) async fn ram_syncer(h: Rc<HostCtx>, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.ram.borrow().dirty_blocks_into(&mut dirty);
        flush_batch(&h, &dirty, FlushTier::Ram).await;
    }
}

/// Periodic flash-tier syncer (naive architecture).
pub(crate) async fn flash_syncer(h: Rc<HostCtx>, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.flash.borrow().dirty_blocks_into(&mut dirty);
        flush_batch(&h, &dirty, FlushTier::Flash).await;
    }
}

/// Periodic unified-tier syncer for one medium.
pub(crate) async fn unified_syncer(h: Rc<HostCtx>, medium: Medium, period: SimTime) {
    let mut dirty: Vec<BlockAddr> = Vec::new();
    loop {
        h.sim.sleep(period).await;
        dirty.clear();
        h.unified
            .as_ref()
            .expect("unified cache")
            .borrow()
            .dirty_blocks_of_into(medium, &mut dirty);
        flush_batch(&h, &dirty, FlushTier::Unified).await;
    }
}
