//! Sim-time telemetry: op-lifecycle spans, phase attribution, unified
//! time-series windows, the span stream, and the Chrome trace exporter.
//!
//! The paper's governing metric is per-block application latency (§7); this
//! module explains *where* those nanoseconds went. Every measured
//! application op can carry an [`OpSpan`] that attributes each awaited
//! interval of the op to exactly one [`Phase`]. Attribution is exact **by
//! construction**: the span keeps one open interval (`cur_phase` since
//! `cur_since`); [`OpSpan::enter`] closes it into the current phase's
//! bucket and opens the next, and collection closes the last — so
//! the per-phase durations always sum to `end - start`, the op's reported
//! latency, no matter how sparsely the engine threads phase changes
//! (un-annotated awaits simply accrue to the phase that was last entered).
//!
//! Telemetry is strictly opt-in and is pure bookkeeping: it never sleeps,
//! spawns, or draws randomness, so an instrumented run schedules the exact
//! same event sequence as an uninstrumented one (PERF.md invariant 12).
//! With telemetry disabled every hook is an `Option` that is `None` — the
//! literal pre-telemetry code path.
//!
//! Three sinks consume spans:
//!
//! - [`TelemetryStats`] — in-memory per-phase totals/histograms plus the
//!   unified per-window time series ([`TelemetryWindow`]), merged across
//!   hosts and embedded in every `SimReport`.
//! - the **span stream** ([`SpanStream`]) — an optional JSONL file
//!   (`--trace-out FILE`), one [`SpanRow`] per completed op in completion
//!   order (deterministic under the DES), flushed in chunks.
//! - [`chrome_trace`] — converts span rows to Chrome trace-event JSON for
//!   Perfetto / `chrome://tracing` timeline viewing.

use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::rc::Rc;

use fcache_des::{Sim, SimTime};
use fcache_types::{FxHashMap, Json, OpKind, Phase, TraceOp};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::host::HostCtx;

/// Rows buffered in the span stream between explicit flushes.
const FLUSH_EVERY: u32 = 64;

// ---------------------------------------------------------------------------
// Op-lifecycle span
// ---------------------------------------------------------------------------

/// Phase attribution for one in-flight application op.
///
/// Interior-mutable so the engine can thread a shared `Option<&OpSpan>`
/// through nested async helpers without borrow gymnastics. Created at op
/// dispatch, finished at op completion; see the module docs for the
/// exactness argument.
pub struct OpSpan {
    start: SimTime,
    cur_phase: Cell<Phase>,
    cur_since: Cell<u64>,
    acc: [Cell<u64>; Phase::COUNT],
    retries: Cell<u64>,
    hit_blocks: Cell<u64>,
    filer_blocks: Cell<u64>,
}

impl OpSpan {
    /// Opens a span at `now`, starting in [`Phase::CacheProbe`] (every op
    /// begins with a cache lookup).
    pub fn new(now: SimTime) -> Self {
        OpSpan {
            start: now,
            cur_phase: Cell::new(Phase::CacheProbe),
            cur_since: Cell::new(now.as_nanos()),
            acc: Default::default(),
            retries: Cell::new(0),
            hit_blocks: Cell::new(0),
            filer_blocks: Cell::new(0),
        }
    }

    /// Closes the open interval into the current phase's bucket and starts
    /// attributing to `phase` from `now` on.
    pub fn enter(&self, now: SimTime, phase: Phase) {
        let now = now.as_nanos();
        let dt = now - self.cur_since.get();
        if dt > 0 {
            let slot = &self.acc[self.cur_phase.get().index()];
            slot.set(slot.get() + dt);
        }
        self.cur_phase.set(phase);
        self.cur_since.set(now);
    }

    /// Sim time the span was opened at.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Records one retry attempt (op timeout / transient device failure).
    pub(crate) fn note_retry(&self) {
        self.retries.set(self.retries.get() + 1);
    }

    /// Records the op's block fates for the window hit-rate series:
    /// `hit` blocks served from RAM/flash, `filer` blocks fetched from the
    /// backend.
    pub(crate) fn note_blocks(&self, hit: u64, filer: u64) {
        self.hit_blocks.set(self.hit_blocks.get() + hit);
        self.filer_blocks.set(self.filer_blocks.get() + filer);
    }

    /// Closes the last interval at `end` and returns the per-phase
    /// durations. They sum to `end - start` exactly.
    fn finish(&self, end: SimTime) -> [u64; Phase::COUNT] {
        self.enter(end, self.cur_phase.get());
        let mut out = [0u64; Phase::COUNT];
        for (o, c) in out.iter_mut().zip(self.acc.iter()) {
            *o = c.get();
        }
        out
    }
}

/// Terse call-site helper: switch `sp`'s attribution to `phase` at the
/// sim's current time, if a span is being recorded at all.
pub(crate) fn enter(sp: Option<&OpSpan>, sim: &Sim, phase: Phase) {
    if let Some(s) = sp {
        s.enter(sim.now(), phase);
    }
}

// ---------------------------------------------------------------------------
// Unified time-series window
// ---------------------------------------------------------------------------

/// One fixed-duration window of the unified telemetry time series.
///
/// Generalizes the device layer's `device_windows`: per window the series
/// carries hit rate, dirty ratio, flash queue depth, retry counts,
/// degraded time, and (for sharded runs) per-shard availability. Raw sums
/// are stored so windows merge across hosts by field-wise addition; the
/// ratio helpers derive the usual metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryWindow {
    /// Window start (inclusive), sim ns.
    pub start_ns: u64,
    /// Window end (exclusive), sim ns.
    pub end_ns: u64,
    /// Ops completed in this window (completion-time binning).
    pub ops: u64,
    /// Blocks read by ops completed in this window.
    pub read_blocks: u64,
    /// Blocks written by ops completed in this window.
    pub write_blocks: u64,
    /// Read blocks served from RAM or flash.
    pub hit_blocks: u64,
    /// Read blocks fetched from the backend filer.
    pub filer_blocks: u64,
    /// Summed op latency, ns.
    pub latency_ns: u64,
    /// Retry attempts (op timeouts, transient device failures).
    pub retries: u64,
    /// Nanoseconds ops spent parked in degraded mode.
    pub degraded_ns: u64,
    /// Dirty-ratio sample numerator (dirty cached blocks at op completion).
    pub dirty_num: u64,
    /// Dirty-ratio sample denominator (cached blocks at op completion).
    pub dirty_den: u64,
    /// Flash queue depth summed over samples (one sample per completion).
    pub depth_sum: u64,
    /// Number of queue-depth samples.
    pub depth_samples: u64,
    /// Per-shard nanoseconds the shard was live within this window
    /// (empty for unsharded runs; filled once at collection, not summed
    /// per host).
    pub shard_live_ns: Vec<u64>,
}

impl TelemetryWindow {
    /// Empty window number `index` of length `window_ns`.
    fn at(index: u64, window_ns: u64) -> Self {
        TelemetryWindow {
            start_ns: index * window_ns,
            end_ns: (index + 1) * window_ns,
            ..TelemetryWindow::default()
        }
    }

    /// Read hit rate over the window (hits / (hits + filer fetches)).
    pub fn hit_rate(&self) -> f64 {
        let den = self.hit_blocks + self.filer_blocks;
        if den == 0 {
            0.0
        } else {
            self.hit_blocks as f64 / den as f64
        }
    }

    /// Mean dirty fraction of the cache over the window's samples.
    pub fn dirty_ratio(&self) -> f64 {
        if self.dirty_den == 0 {
            0.0
        } else {
            self.dirty_num as f64 / self.dirty_den as f64
        }
    }

    /// Mean sampled flash queue depth.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Mean op latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.latency_ns as f64 / self.ops as f64 / 1000.0
        }
    }

    /// Per-shard availability (live fraction of the window).
    pub fn availability(&self) -> Vec<f64> {
        let span = (self.end_ns - self.start_ns).max(1) as f64;
        self.shard_live_ns
            .iter()
            .map(|&live| live as f64 / span)
            .collect()
    }

    /// Adds another host's accumulation of the same window (field-wise;
    /// bounds and shard availability are global, not summed).
    fn absorb(&mut self, o: &TelemetryWindow) {
        self.ops += o.ops;
        self.read_blocks += o.read_blocks;
        self.write_blocks += o.write_blocks;
        self.hit_blocks += o.hit_blocks;
        self.filer_blocks += o.filer_blocks;
        self.latency_ns += o.latency_ns;
        self.retries += o.retries;
        self.degraded_ns += o.degraded_ns;
        self.dirty_num += o.dirty_num;
        self.dirty_den += o.dirty_den;
        self.depth_sum += o.depth_sum;
        self.depth_samples += o.depth_samples;
    }
}

// ---------------------------------------------------------------------------
// Report-level summary
// ---------------------------------------------------------------------------

/// Telemetry section of a `SimReport`: per-phase latency breakdown and the
/// unified window series, merged across hosts.
///
/// Default (all-zero) when telemetry was disabled; the results codec only
/// serializes an engaged section, mirroring the `shard` field's optional
/// encoding under `REPORT_SCHEMA` 1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryStats {
    /// Completed op spans recorded.
    pub spans: u64,
    /// Total nanoseconds attributed to each phase (indexed by
    /// [`Phase::index`]).
    pub phase_ns: [u64; Phase::COUNT],
    /// Ops that spent any time in each phase.
    pub phase_ops: [u64; Phase::COUNT],
    /// Per-phase duration histograms (per-op time in that phase).
    pub phase_hists: [HistogramSnapshot; Phase::COUNT],
    /// Window length in sim ns (0 when the window series was disabled).
    pub window_ns: u64,
    /// The unified time series, one entry per window in time order.
    pub windows: Vec<TelemetryWindow>,
}

impl TelemetryStats {
    /// True when telemetry ran (anything differs from the default).
    pub fn engaged(&self) -> bool {
        *self != TelemetryStats::default()
    }

    /// Total attributed nanoseconds across all phases. Equals the summed
    /// latency of all spanned ops.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of all attributed time spent in `phase`.
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.phase_ns[phase.index()] as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Per-host collection context
// ---------------------------------------------------------------------------

/// Per-host telemetry collector, hung off `HostCtx` when enabled.
///
/// Pure bookkeeping: every method runs synchronously at op completion and
/// never touches the executor.
pub struct TelemetryCtx {
    /// Scaled window length, or `None` when the window series is off.
    window_ns: Option<u64>,
    spans: Cell<u64>,
    phase_ns: [Cell<u64>; Phase::COUNT],
    phase_ops: [Cell<u64>; Phase::COUNT],
    phase_hists: [LatencyHistogram; Phase::COUNT],
    windows: RefCell<Vec<TelemetryWindow>>,
    /// Span stream shared by all hosts of the run (completion-order rows).
    stream: Option<Rc<SpanStream>>,
}

impl TelemetryCtx {
    /// New collector. `window_ns` is the already-scaled window length.
    pub(crate) fn new(window_ns: Option<u64>, stream: Option<Rc<SpanStream>>) -> Self {
        TelemetryCtx {
            window_ns,
            spans: Cell::new(0),
            phase_ns: Default::default(),
            phase_ops: Default::default(),
            phase_hists: std::array::from_fn(|_| LatencyHistogram::new()),
            windows: RefCell::new(Vec::new()),
            stream,
        }
    }

    /// The shared span stream, if one is attached.
    pub(crate) fn stream(&self) -> Option<&Rc<SpanStream>> {
        self.stream.as_ref()
    }

    /// Folds a completed span into the summary, the window series, and the
    /// span stream. Called once per measured op at completion.
    pub(crate) fn complete_op(&self, h: &HostCtx, op: &TraceOp, sp: &OpSpan, end: SimTime) {
        let phases = sp.finish(end);
        self.spans.set(self.spans.get() + 1);
        for (i, &ns) in phases.iter().enumerate() {
            if ns > 0 {
                self.phase_ns[i].set(self.phase_ns[i].get() + ns);
                self.phase_ops[i].set(self.phase_ops[i].get() + 1);
                self.phase_hists[i].record(SimTime::from_nanos(ns));
            }
        }
        if let Some(wns) = self.window_ns {
            let idx = (end.as_nanos() / wns) as usize;
            let mut ws = self.windows.borrow_mut();
            while ws.len() <= idx {
                let i = ws.len() as u64;
                ws.push(TelemetryWindow::at(i, wns));
            }
            let w = &mut ws[idx];
            let blocks = u64::from(op.nblocks());
            w.ops += 1;
            if op.kind().is_write() {
                w.write_blocks += blocks;
            } else {
                w.read_blocks += blocks;
            }
            w.hit_blocks += sp.hit_blocks.get();
            w.filer_blocks += sp.filer_blocks.get();
            w.latency_ns += end.as_nanos() - sp.start.as_nanos();
            w.retries += sp.retries.get();
            w.degraded_ns += phases[Phase::DegradedPark.index()];
            let (dirty, total) = h.cache_occupancy();
            w.dirty_num += dirty;
            w.dirty_den += total;
            w.depth_sum += h.dev.queue_depth();
            w.depth_samples += 1;
        }
        if let Some(stream) = &self.stream {
            stream.write_row(&SpanRow {
                op: stream.next_seq(),
                host: u64::from(h.id.0),
                kind: op.kind(),
                start_ns: sp.start.as_nanos(),
                end_ns: end.as_nanos(),
                blocks: u64::from(op.nblocks()),
                phases,
            });
        }
    }

    /// Merges this host's accumulation into a run-level summary.
    pub(crate) fn fold_into(&self, out: &mut TelemetryStats) {
        out.spans += self.spans.get();
        for i in 0..Phase::COUNT {
            out.phase_ns[i] += self.phase_ns[i].get();
            out.phase_ops[i] += self.phase_ops[i].get();
            out.phase_hists[i] = out.phase_hists[i].merged(&self.phase_hists[i].snapshot());
        }
        if let Some(wns) = self.window_ns {
            out.window_ns = wns;
            let ws = self.windows.borrow();
            for (i, w) in ws.iter().enumerate() {
                if out.windows.len() <= i {
                    out.windows.push(TelemetryWindow::at(i as u64, wns));
                }
                out.windows[i].absorb(w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Span stream (JSONL sink)
// ---------------------------------------------------------------------------

/// Append-only JSONL span sink shared by every host of a run.
///
/// Rows are written in op-completion order, which the deterministic
/// executor makes identical across serial / parallel-sweep / streamed
/// runs of the same seed. Buffered, flushed every `FLUSH_EVERY` rows
/// and once more at collection.
pub struct SpanStream {
    out: RefCell<BufWriter<File>>,
    seq: Cell<u64>,
    pending: Cell<u32>,
}

impl SpanStream {
    /// Creates (truncating) the span stream file.
    pub(crate) fn create(path: &Path) -> io::Result<SpanStream> {
        Ok(SpanStream {
            out: RefCell::new(BufWriter::new(File::create(path)?)),
            seq: Cell::new(0),
            pending: Cell::new(0),
        })
    }

    /// Next global completion-order sequence number.
    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    fn write_row(&self, row: &SpanRow) {
        let mut line = String::new();
        row.to_json().encode(&mut line);
        line.push('\n');
        let mut out = self.out.borrow_mut();
        out.write_all(line.as_bytes())
            .expect("span stream write failed");
        let p = self.pending.get() + 1;
        if p >= FLUSH_EVERY {
            out.flush().expect("span stream flush failed");
            self.pending.set(0);
        } else {
            self.pending.set(p);
        }
    }

    /// Final flush at collection time.
    pub(crate) fn finish(&self) {
        self.out
            .borrow_mut()
            .flush()
            .expect("span stream flush failed");
    }
}

// ---------------------------------------------------------------------------
// Span rows (wire format)
// ---------------------------------------------------------------------------

/// One completed op span as written to / read from the span stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Global completion-order sequence number.
    pub op: u64,
    /// Issuing host.
    pub host: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Op dispatch time, sim ns.
    pub start_ns: u64,
    /// Op completion time, sim ns.
    pub end_ns: u64,
    /// Blocks touched by the op.
    pub blocks: u64,
    /// Per-phase nanoseconds; sums to [`SpanRow::latency_ns`] exactly.
    pub phases: [u64; Phase::COUNT],
}

impl SpanRow {
    /// The op's reported latency.
    pub fn latency_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Sum of the per-phase attributions (== latency by construction).
    pub fn phase_sum(&self) -> u64 {
        self.phases.iter().sum()
    }

    /// `"read"` / `"write"`, as encoded in the stream.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }

    /// JSONL encoding. Only nonzero phases are emitted, keyed by
    /// [`Phase::label`]; `lat` is redundant with `end - start` but keeps
    /// rows greppable.
    pub fn to_json(&self) -> Json {
        let mut ph = Json::obj();
        for p in Phase::ALL {
            let ns = self.phases[p.index()];
            if ns > 0 {
                ph = ph.field(p.label(), Json::U64(ns));
            }
        }
        Json::obj()
            .field("op", Json::U64(self.op))
            .field("host", Json::U64(self.host))
            .field("kind", Json::Str(self.kind_label().to_string()))
            .field("start", Json::U64(self.start_ns))
            .field("end", Json::U64(self.end_ns))
            .field("lat", Json::U64(self.latency_ns()))
            .field("blocks", Json::U64(self.blocks))
            .field("phases", ph)
    }

    /// Decodes one span row (the analyzer path).
    pub fn from_json(v: &Json) -> Result<SpanRow, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("span row: missing or invalid `{key}`"))
        };
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("read") => OpKind::Read,
            Some("write") => OpKind::Write,
            other => return Err(format!("span row: bad `kind` {other:?}")),
        };
        let start_ns = u("start")?;
        let end_ns = u("end")?;
        if end_ns < start_ns {
            return Err("span row: end < start".to_string());
        }
        let mut phases = [0u64; Phase::COUNT];
        if let Some(ph) = v.get("phases") {
            for p in Phase::ALL {
                if let Some(ns) = ph.get(p.label()).and_then(Json::as_u64) {
                    phases[p.index()] = ns;
                }
            }
        }
        Ok(SpanRow {
            op: u("op")?,
            host: u("host")?,
            kind,
            start_ns,
            end_ns,
            blocks: u("blocks")?,
            phases,
        })
    }
}

/// Reads an entire span stream file. Strict: any malformed line is an
/// error naming the line number (trace files are written whole; there is
/// no torn tail to tolerate).
pub fn read_span_rows(path: &Path) -> Result<Vec<SpanRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        rows.push(
            SpanRow::from_json(&v).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Converts span rows to Chrome trace-event JSON (the "JSON array format"
/// with complete `"ph":"X"` events) loadable in Perfetto or
/// `chrome://tracing`.
///
/// Each host becomes a `pid`; overlapping ops on a host are spread over
/// `tid` lanes greedily (first free lane by start time). Every op emits
/// one `op` slice plus its nonzero phase slices laid end-to-end inside
/// it — the phases tile the op exactly, so the viewer shows the
/// attribution visually. Timestamps and durations are microseconds, per
/// the format.
pub fn chrome_trace(rows: &[SpanRow]) -> Json {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| (rows[i].host, rows[i].start_ns, rows[i].op));
    let us = |ns: u64| Json::F64(ns as f64 / 1000.0);
    let mut lanes: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let mut events = Vec::new();
    for &i in &order {
        let r = &rows[i];
        let host_lanes = lanes.entry(r.host).or_default();
        let lane = match host_lanes.iter().position(|&busy| busy <= r.start_ns) {
            Some(l) => l,
            None => {
                host_lanes.push(0);
                host_lanes.len() - 1
            }
        };
        host_lanes[lane] = r.end_ns;
        events.push(
            Json::obj()
                .field("name", Json::Str(r.kind_label().to_string()))
                .field("cat", Json::Str("op".to_string()))
                .field("ph", Json::Str("X".to_string()))
                .field("ts", us(r.start_ns))
                .field("dur", us(r.latency_ns()))
                .field("pid", Json::U64(r.host))
                .field("tid", Json::U64(lane as u64))
                .field(
                    "args",
                    Json::obj()
                        .field("op", Json::U64(r.op))
                        .field("blocks", Json::U64(r.blocks)),
                ),
        );
        let mut off = r.start_ns;
        for p in Phase::ALL {
            let d = r.phases[p.index()];
            if d == 0 {
                continue;
            }
            events.push(
                Json::obj()
                    .field("name", Json::Str(p.label().to_string()))
                    .field("cat", Json::Str("phase".to_string()))
                    .field("ph", Json::Str("X".to_string()))
                    .field("ts", us(off))
                    .field("dur", us(d))
                    .field("pid", Json::U64(r.host))
                    .field("tid", Json::U64(lane as u64)),
            );
            off += d;
        }
    }
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", Json::Str("ms".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_phases_sum_to_latency_by_construction() {
        let sp = OpSpan::new(SimTime::from_nanos(100));
        sp.enter(SimTime::from_nanos(150), Phase::Net);
        sp.enter(SimTime::from_nanos(400), Phase::Filer);
        // A phase re-entered later accumulates, and un-annotated gaps
        // accrue to the last-entered phase.
        sp.enter(SimTime::from_nanos(900), Phase::Net);
        let phases = sp.finish(SimTime::from_nanos(1000));
        assert_eq!(phases[Phase::CacheProbe.index()], 50);
        assert_eq!(phases[Phase::Net.index()], 250 + 100);
        assert_eq!(phases[Phase::Filer.index()], 500);
        assert_eq!(phases.iter().sum::<u64>(), 900);
    }

    #[test]
    fn zero_duration_span_is_all_zero() {
        let sp = OpSpan::new(SimTime::from_nanos(5));
        let phases = sp.finish(SimTime::from_nanos(5));
        assert_eq!(phases.iter().sum::<u64>(), 0);
    }

    #[test]
    fn span_row_roundtrips_through_json() {
        let mut phases = [0u64; Phase::COUNT];
        phases[Phase::CacheProbe.index()] = 10;
        phases[Phase::Filer.index()] = 90;
        let row = SpanRow {
            op: 7,
            host: 2,
            kind: OpKind::Read,
            start_ns: 1_000,
            end_ns: 1_100,
            blocks: 4,
            phases,
        };
        let v = Json::parse(&row.to_json().to_string()).unwrap();
        assert_eq!(SpanRow::from_json(&v).unwrap(), row);
        assert_eq!(row.phase_sum(), row.latency_ns());
    }

    #[test]
    fn window_ratios() {
        let w = TelemetryWindow {
            start_ns: 0,
            end_ns: 1_000,
            hit_blocks: 3,
            filer_blocks: 1,
            dirty_num: 1,
            dirty_den: 4,
            depth_sum: 6,
            depth_samples: 3,
            shard_live_ns: vec![1_000, 500],
            ..TelemetryWindow::default()
        };
        assert_eq!(w.hit_rate(), 0.75);
        assert_eq!(w.dirty_ratio(), 0.25);
        assert_eq!(w.mean_queue_depth(), 2.0);
        assert_eq!(w.availability(), vec![1.0, 0.5]);
    }

    #[test]
    fn chrome_trace_tiles_phases_inside_ops() {
        let mut phases = [0u64; Phase::COUNT];
        phases[Phase::CacheProbe.index()] = 40;
        phases[Phase::DeviceService.index()] = 60;
        let rows = vec![SpanRow {
            op: 0,
            host: 1,
            kind: OpKind::Write,
            start_ns: 2_000,
            end_ns: 2_100,
            blocks: 1,
            phases,
        }];
        let j = chrome_trace(&rows);
        let events = j.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3); // op slice + 2 phase slices
        let op = &events[0];
        assert_eq!(op.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(op.get("dur").and_then(Json::as_f64), Some(0.1));
        let total: f64 = events[1..]
            .iter()
            .map(|e| e.get("dur").and_then(Json::as_f64).unwrap())
            .sum();
        assert!((total - 0.1).abs() < 1e-9);
    }

    #[test]
    fn chrome_trace_lanes_split_overlapping_ops() {
        let row = |op, start, end| SpanRow {
            op,
            host: 0,
            kind: OpKind::Read,
            start_ns: start,
            end_ns: end,
            blocks: 1,
            phases: [0; Phase::COUNT],
        };
        // Two overlapping ops need two lanes; a third after both fits lane 0.
        let rows = vec![row(0, 0, 100), row(1, 50, 150), row(2, 200, 300)];
        let j = chrome_trace(&rows);
        let events = j.get("traceEvents").and_then(Json::as_arr).unwrap();
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("op"))
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(tids, vec![0, 1, 0]);
    }
}
