//! Fleet planning: carving a host population into simulation cells.
//!
//! A fleet-scale run simulates thousands of client hosts against shared
//! backends. One discrete-event simulation holding every host would
//! serialize the whole fleet through a single event loop, so a fleet is
//! partitioned into **cells**: contiguous slices of `cell_hosts` hosts,
//! each cell one independent simulation job (its own filer or sharded
//! store, its own shared network segments, its own trace). Cells are the
//! unit of parallelism — across threads within one process, and across
//! worker processes under the `fcsim fleet` coordinator.
//!
//! Everything here is pure planning arithmetic: given a [`FleetPlan`],
//! any process can derive cell `c`'s configuration, workload, and label
//! from the base config alone. That purity is what makes the
//! multi-process mode exact — a fleet run across `P` processes produces
//! bit-identical rows to the same fleet in one process, because every
//! per-cell input is a function of `(base, c)` and never of which
//! process computed it (pinned by `tests/fleet.rs` and the CI fleet
//! smoke).
//!
//! The heavy lifting — running cells, merging worker row files, folding
//! fleet-level percentiles — lives in the `fcache-fleet` crate; this
//! module is the part the engine itself needs (and the part core tests
//! exercise without a dependency cycle).

use fcache_types::{mix64, FleetTopology};

use crate::config::SimConfig;
use crate::experiment::WorkloadSpec;

/// Seed-derivation tags: cell seeds are `mix64(base ^ (cell << 32) ^ TAG)`,
/// one tag per stream, mirroring the engine's per-host net/device/fault
/// derivations. Distinct tags keep the config and trace streams
/// uncorrelated even though both start from the user's one seed.
const CELL_CFG_TAG: u64 = 0xf1ee_fa17_0000_0005;
const CELL_TRACE_TAG: u64 = 0x7ace_fa17_0000_0005;

/// A fleet's shape: how many hosts, how they group into cells, and how
/// many hosts share each network segment within a cell.
///
/// The plan is pure data; [`FleetPlan::topology`],
/// [`FleetPlan::cell_config`], and [`FleetPlan::cell_spec`] derive each
/// cell's inputs deterministically from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetPlan {
    /// Total host population.
    pub hosts: u32,
    /// Hosts per cell (the last cell takes the remainder).
    pub cell_hosts: u16,
    /// Hosts sharing one network segment within a cell (fan-in); 1 keeps
    /// the classic private-segment wiring.
    pub hosts_per_segment: u16,
}

impl FleetPlan {
    /// A plan with validated shape.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `cell_hosts` is zero.
    pub fn new(hosts: u32, cell_hosts: u16, hosts_per_segment: u16) -> Self {
        assert!(hosts > 0, "a fleet needs at least one host");
        assert!(cell_hosts > 0, "cells need at least one host");
        Self {
            hosts,
            cell_hosts,
            hosts_per_segment,
        }
    }

    /// Number of cells (the last may hold fewer than `cell_hosts`).
    pub fn cells(&self) -> u32 {
        self.hosts.div_ceil(u32::from(self.cell_hosts))
    }

    /// Global id of cell `cell`'s first host.
    pub fn host_base(&self, cell: u32) -> u32 {
        cell * u32::from(self.cell_hosts)
    }

    /// Host count of cell `cell` (the remainder for the last cell).
    pub fn cell_hosts_of(&self, cell: u32) -> u16 {
        let base = self.host_base(cell);
        let span = self.hosts.saturating_sub(base);
        span.min(u32::from(self.cell_hosts)) as u16
    }

    /// The topology record cell `cell` carries in its configuration.
    pub fn topology(&self, cell: u32) -> FleetTopology {
        FleetTopology {
            cell,
            cells: self.cells(),
            host_base: self.host_base(cell),
            fleet_hosts: self.hosts,
            hosts_per_segment: self.hosts_per_segment,
        }
    }

    /// Cell `cell`'s configuration: the base config with the fleet
    /// topology attached and a per-cell seed derived from the base seed,
    /// so cells see distinct (but reproducible) net/device/fault
    /// randomness.
    pub fn cell_config(&self, base: &SimConfig, cell: u32) -> SimConfig {
        let mut cfg = base.clone();
        cfg.fleet = Some(self.topology(cell));
        cfg.seed = mix64(base.seed ^ (u64::from(cell) << 32) ^ CELL_CFG_TAG);
        cfg
    }

    /// Cell `cell`'s workload: the template spec resized to the cell's
    /// host count, with a per-cell trace seed so cells replay distinct
    /// traces of the same statistical workload.
    pub fn cell_spec(&self, template: &WorkloadSpec, cell: u32) -> WorkloadSpec {
        let mut spec = template.clone();
        spec.hosts = self.cell_hosts_of(cell);
        spec.seed = mix64(template.seed ^ (u64::from(cell) << 32) ^ CELL_TRACE_TAG);
        spec
    }

    /// Cell `cell`'s job label (unique within the fleet — the resume key
    /// for fleet results files).
    pub fn cell_label(&self, cell: u32) -> String {
        let base = self.host_base(cell);
        format!(
            "cell {cell}/{} hosts {base}..{}",
            self.cells(),
            base + u32::from(self.cell_hosts_of(cell)),
        )
    }

    /// The cells worker `worker` of `procs` owns: a strided partition
    /// (`cell % procs == worker`), so every cell belongs to exactly one
    /// worker and `procs = 1` owns them all.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero or `worker` is out of range.
    pub fn worker_cells(&self, procs: u32, worker: u32) -> Vec<u32> {
        assert!(procs > 0, "at least one worker process");
        assert!(worker < procs, "worker {worker} out of range for {procs}");
        (0..self.cells()).filter(|c| c % procs == worker).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_cover_hosts_exactly_once() {
        let plan = FleetPlan::new(1000, 96, 8);
        assert_eq!(plan.cells(), 11); // 10 × 96 + 40
        let mut total = 0u32;
        for c in 0..plan.cells() {
            assert_eq!(plan.host_base(c), total);
            total += u32::from(plan.cell_hosts_of(c));
        }
        assert_eq!(total, 1000);
        assert_eq!(plan.cell_hosts_of(10), 40); // the remainder cell
        let t = plan.topology(10);
        assert_eq!(t.host_base, 960);
        assert_eq!(t.fleet_hosts, 1000);
        assert_eq!(t.hosts_per_segment, 8);
    }

    #[test]
    fn worker_partition_is_exact() {
        let plan = FleetPlan::new(512, 64, 4);
        let cells = plan.cells();
        for procs in [1u32, 2, 3] {
            let mut seen = vec![0u32; cells as usize];
            for w in 0..procs {
                for c in plan.worker_cells(procs, w) {
                    seen[c as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "procs={procs}: {seen:?}");
        }
        assert_eq!(plan.worker_cells(1, 0).len() as u32, cells);
    }

    #[test]
    fn cell_inputs_are_derived_and_distinct() {
        let base = SimConfig::baseline();
        let spec = WorkloadSpec::default();
        let plan = FleetPlan::new(256, 128, 2);
        let c0 = plan.cell_config(&base, 0);
        let c1 = plan.cell_config(&base, 1);
        assert_eq!(c0.fleet.unwrap().cell, 0);
        assert_eq!(c1.fleet.unwrap().host_base, 128);
        assert_ne!(c0.seed, c1.seed);
        assert_ne!(c0.seed, base.seed);
        let s0 = plan.cell_spec(&spec, 0);
        let s1 = plan.cell_spec(&spec, 1);
        assert_eq!(s0.hosts, 128);
        assert_ne!(s0.seed, s1.seed);
        // Derivation is a pure function of (base, cell) — recomputing
        // anywhere (another worker process) gives the same inputs.
        assert_eq!(plan.cell_config(&base, 1).seed, c1.seed);
        assert_ne!(plan.cell_label(0), plan.cell_label(1));
    }
}
