//! Building and running a complete simulation from a configuration and a
//! trace.
//!
//! Two replay paths share one engine:
//!
//! - [`run_trace`] replays an in-memory [`Trace`] through **per-thread
//!   cursors**: one counting-sort index pass groups op indices by
//!   `(host, thread)` slot, and each slot's task walks its span of the
//!   shared order array. No per-thread `Vec<TraceOp>` clones exist — replay
//!   memory beyond the shared trace is the 4-byte-per-op index, shared by
//!   all threads.
//! - [`run_source`] replays any [`TraceSource`] (streamed generation,
//!   chunked `FCTRACE1` file reads) through bounded chunks fanned into
//!   per-thread queues, so replay memory is O(chunk) plus transient
//!   inter-thread skew — independent of trace length.
//!
//! Both paths spawn one task per `(host, thread)` slot in slot order and
//! deliver each thread's ops in trace order, so they produce bit-identical
//! [`SimReport`]s (asserted by `tests/trace_streaming.rs`).

use std::cell::{Cell, RefCell};
use std::io;
use std::rc::Rc;

use fcache_cache::{BlockCache, Medium, UnifiedCache};
use fcache_des::{RunError, Sim, SimTime};
use fcache_device::IoLog;
use fcache_filer::{Filer, FilerConfig};
use fcache_net::{Segment, SegmentStats};
use fcache_remote::{shard_filer_config, shard_net_config, RemoteStore, Router, ShardedStore};
use fcache_types::{
    mix64, FaultSchedule, FxHashSet, HostId, ResolvedFaultSet, SlotCursor, Trace, TraceOp,
    TraceSource, BLOCK_SIZE, TRACE_CHUNK_OPS,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arch::Architecture;
use crate::config::SimConfig;
use crate::devsvc::DeviceService;
use crate::engine::{self, execute_op};
use crate::flush::{self, FlushQueue};
use crate::host::{HostCtx, RemoteCtx};
use crate::metrics::Metrics;
use crate::report::SimReport;
use crate::robust::{DegradedPolicy, FaultCtx, RobustnessState};
use crate::spill::SpillQueue;
use crate::telemetry::{SpanStream, TelemetryCtx, TelemetryStats};

/// Error from a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The discrete-event core found blocked tasks with no pending events.
    Deadlock {
        /// Number of stuck tasks.
        live_tasks: usize,
    },
    /// The trace source failed mid-stream (I/O error, corrupt record, or an
    /// op outside the dimensions its metadata promised).
    Source(String),
    /// The run panicked. Produced only by [`crate::Sweep`], which catches
    /// per-job panics so one hostile job cannot abort a whole sweep; the
    /// payload is the panic message.
    Panic(String),
    /// An operation failed under fault injection while the degraded policy
    /// was [`crate::DegradedPolicy::Strict`] — the run refuses to report
    /// degraded results. The payload is the first offending fault clause
    /// (e.g. `filer:outage@40s-60s`), so a sweep error names the injection
    /// that sank the job.
    Faulted {
        /// The fault clause behind the first failed operation.
        clause: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { live_tasks } => {
                write!(f, "simulation deadlocked with {live_tasks} task(s) blocked")
            }
            SimError::Source(msg) => write!(f, "trace source failed: {msg}"),
            SimError::Panic(msg) => write!(f, "simulation panicked: {msg}"),
            SimError::Faulted { clause } => {
                write!(
                    f,
                    "operation failed under injected fault ({clause}) with strict degraded policy"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunError> for SimError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Deadlock { live_tasks } => SimError::Deadlock { live_tasks },
        }
    }
}

/// Resolved fault-injection state for one run: the per-target schedules
/// plus the shared robustness counters. Absent when the plan is empty, so
/// fault-free runs build exactly the pre-fault object graph.
struct FaultParts {
    set: Rc<ResolvedFaultSet>,
    /// Backend availability-accounting schedule: filer windows plus the
    /// distinct shard windows (mirrors deduped), so per-window tallies
    /// cover shard faults too.
    acct: Rc<FaultSchedule>,
    state: Rc<RobustnessState>,
}

/// Everything both replay paths share: the executor, the hosts, and the
/// global sinks that become the report.
struct SimParts {
    sim: Sim,
    cfg: Rc<SimConfig>,
    filer: Filer,
    metrics: Metrics,
    hosts: Vec<Rc<HostCtx>>,
    fault: Option<FaultParts>,
    /// The sharded remote tier, present only when
    /// [`SimConfig::remote_engaged`]. When present, `filer` above is unused
    /// (hosts alias shard 0's filer) and the report aggregates the shards.
    remote: Option<Rc<ShardedStore>>,
}

/// Builds the executor and one [`HostCtx`] per host (no tasks yet).
fn build_parts(config: &SimConfig, n_hosts: u16) -> SimParts {
    let cfg = Rc::new(config.clone());
    let sim = Sim::new();

    // Resolve the fault plan once per run: paper-scale windows divide by
    // `time_scale` (like syncer periods) and stochastic episodes expand
    // against the run seed, so the same configuration always injects the
    // same faults.
    let fault = (!cfg.fault_plan.is_empty()).then(|| {
        let set = if cfg.remote_engaged() {
            // Shard-aware resolve: `shard<k>`/`shard*` clauses land on
            // per-shard schedules (and filer clauses fan out to every
            // shard). An out-of-range `shard<k>` is a configuration error;
            // `Sweep` catches the panic and reports it as the job's error.
            cfg.fault_plan
                .resolve_sharded(cfg.seed, cfg.time_scale, cfg.shards)
                .unwrap_or_else(|e| panic!("{e}"))
        } else {
            cfg.fault_plan.resolve(cfg.seed, cfg.time_scale)
        };
        let acct = Rc::new(set.backend_accounting());
        let set = Rc::new(set);
        let state = Rc::new(RobustnessState::new(acct.windows().len()));
        FaultParts { set, acct, state }
    });

    // Derive the filer draw seed from both the filer seed and the run seed
    // so distinct configurations decorrelate.
    let filer_cfg = FilerConfig {
        seed: cfg.filer.seed ^ cfg.seed.rotate_left(17),
        ..cfg.filer
    };
    let mut filer = Filer::new(sim.clone(), filer_cfg);
    if let Some(fp) = &fault {
        filer = filer.with_faults(
            fp.set.filer.clone(),
            mix64(cfg.seed ^ 0xf11e_fa17_0000_0001),
        );
    }
    let metrics = Metrics::new();
    let warmup_over = Rc::new(Cell::new(false));

    // The sharded remote tier: one filer per shard (each with its own
    // content-hash luck and fault schedule) behind a shared router. Built
    // only when the topology or a shard clause engages it, so the plain
    // single-filer object graph stays bit-identical otherwise (PERF.md
    // invariant 11).
    let remote_store: Option<Rc<ShardedStore>> = cfg.remote_engaged().then(|| {
        let router = Router::new(cfg.shards, cfg.replicas);
        let scheds: Vec<FaultSchedule> = match &fault {
            Some(fp) => fp.set.shards.clone(),
            None => vec![FaultSchedule::default(); usize::from(cfg.shards)],
        };
        let filers: Vec<Filer> = (0..cfg.shards)
            .map(|k| {
                let mut f = Filer::new(sim.clone(), shard_filer_config(filer_cfg, k, cfg.seed));
                if fault.is_some() {
                    f = f.with_faults(
                        scheds[usize::from(k)].clone(),
                        mix64(cfg.seed ^ (u64::from(k) << 16) ^ 0x51a2_fa17_0000_0012),
                    );
                }
                f
            })
            .collect();
        Rc::new(ShardedStore::new(router, filers, scheds))
    });

    // Telemetry: one span stream per run (shared by every host, so rows
    // land in global completion order) and a per-host collector. Built
    // only when engaged, so the default run wires exactly the
    // pre-telemetry object graph (PERF.md invariant 12).
    let span_stream: Option<Rc<SpanStream>> = cfg.trace_out.as_ref().map(|path| {
        Rc::new(
            SpanStream::create(path)
                .unwrap_or_else(|e| panic!("--trace-out {}: {e}", path.display())),
        )
    });
    let telemetry_window_ns = cfg.telemetry_windows.map(|w| cfg.scaled_time(w).as_nanos());

    // Network fan-in: hosts share wires in groups of `fanin`. Each group's
    // first host (its *leader*, `i % fanin == 0`) creates the segments —
    // fault seeds keyed by the leader's index — and the rest of the group
    // clones the handles (clones share the channel and the counters). At
    // fan-in 1 every host is its own leader, so this is literally the
    // pre-fleet per-host wiring, seeds included (PERF.md invariant 13).
    let fanin = cfg.net_fanin();
    let mut group_segment: Option<Segment> = None;
    let mut group_remote_segments: Option<Vec<Segment>> = None;
    let mut hosts: Vec<Rc<HostCtx>> = Vec::with_capacity(usize::from(n_hosts));
    for i in 0..n_hosts {
        {
            // This host's view of the remote tier: one segment per shard
            // (shared across the fan-in group), with a small deterministic
            // latency skew per shard.
            let remote = if let Some(store) = &remote_store {
                if i % fanin == 0 {
                    let segments: Vec<Segment> = (0..cfg.shards)
                        .map(|k| {
                            let net = shard_net_config(cfg.net, k);
                            let mut seg = if cfg.duplex_network {
                                Segment::new_duplex(sim.clone(), net)
                            } else {
                                Segment::new(sim.clone(), net)
                            };
                            if let Some(fp) = &fault {
                                seg = seg.with_faults(
                                    fp.set.net_to_server.clone(),
                                    fp.set.net_from_server.clone(),
                                    mix64(
                                        cfg.seed
                                            ^ (u64::from(i) << 32)
                                            ^ (u64::from(k) << 16)
                                            ^ 0x5e97_fa17_0000_0012,
                                    ),
                                );
                            }
                            seg
                        })
                        .collect();
                    group_remote_segments = Some(segments);
                }
                Some(RemoteCtx {
                    store: Rc::clone(store),
                    segments: group_remote_segments
                        .clone()
                        .expect("fan-in group leader builds the wires"),
                    // Hedging needs a second replica to race.
                    hedge_ns: (cfg.replicas > 1)
                        .then(|| cfg.hedge.map(|d| cfg.scaled_time(d).as_nanos()))
                        .flatten(),
                })
            } else {
                None
            };
            let segment = if let Some(r) = &remote {
                // Alias shard 0's wire so legacy `segment` consumers (stat
                // resets, debug) see a live handle; aggregation sums the
                // per-shard segments instead.
                r.segments[0].clone()
            } else {
                if i % fanin == 0 {
                    let mut segment = if cfg.duplex_network {
                        Segment::new_duplex(sim.clone(), cfg.net)
                    } else {
                        Segment::new(sim.clone(), cfg.net)
                    };
                    if let Some(fp) = &fault {
                        segment = segment.with_faults(
                            fp.set.net_to_server.clone(),
                            fp.set.net_from_server.clone(),
                            mix64(cfg.seed ^ (u64::from(i) << 32) ^ 0x5e97_fa17_0000_0002),
                        );
                    }
                    group_segment = Some(segment);
                }
                group_segment
                    .clone()
                    .expect("fan-in group leader builds the wire")
            };
            let host_filer = match &remote {
                Some(r) => r.store.filer(0).clone(),
                None => filer.clone(),
            };
            let unified = (cfg.arch == Architecture::Unified)
                .then(|| RefCell::new(UnifiedCache::new(cfg.ram_blocks(), cfg.flash_blocks())));
            let iolog = if cfg.log_flash_io {
                IoLog::new()
            } else {
                IoLog::disabled()
            };
            let mut dev = DeviceService::new(sim.clone(), &cfg, HostId(i), iolog.clone());
            if let Some(fp) = &fault {
                dev = dev.with_faults(
                    fp.set.device.clone(),
                    mix64(cfg.seed ^ (u64::from(i) << 32) ^ 0xde71_fa17_0000_0003),
                    Rc::clone(&fp.state),
                    cfg.scaled_time(cfg.robustness.retry_base),
                );
            }
            let host_fault = fault.as_ref().map(|fp| {
                Rc::new(FaultCtx {
                    set: Rc::clone(&fp.set),
                    acct: Rc::clone(&fp.acct),
                    cfg: cfg.robustness,
                    op_timeout: cfg.scaled_time(cfg.robustness.op_timeout),
                    retry_base: cfg.scaled_time(cfg.robustness.retry_base),
                    rng: RefCell::new(SmallRng::seed_from_u64(mix64(
                        cfg.seed ^ (u64::from(i) << 32) ^ 0x0b0f_fa17_0000_0004,
                    ))),
                    state: Rc::clone(&fp.state),
                })
            });
            // Fleet cells give every host a private metrics sink (folded
            // exactly into one snapshot at collection); outside a fleet
            // every host shares one sink — the pre-fleet object graph.
            let host_metrics = if cfg.fleet_engaged() {
                Metrics::new()
            } else {
                metrics.clone()
            };
            hosts.push(Rc::new(HostCtx {
                id: HostId(i),
                sim: sim.clone(),
                cfg: Rc::clone(&cfg),
                ram: RefCell::new(BlockCache::with_policy(
                    if cfg.arch == Architecture::Unified {
                        0
                    } else {
                        cfg.ram_blocks()
                    },
                    cfg.replacement,
                )),
                flash: RefCell::new(BlockCache::with_policy(
                    if cfg.arch == Architecture::Unified {
                        0
                    } else {
                        cfg.flash_blocks()
                    },
                    cfg.replacement,
                )),
                unified,
                segment,
                filer: host_filer,
                metrics: host_metrics,
                iolog,
                dev,
                ram_flush_pending: RefCell::new(FxHashSet::default()),
                flash_flush_pending: RefCell::new(FxHashSet::default()),
                peers: RefCell::new(Vec::new()),
                warmup_over: Rc::clone(&warmup_over),
                buf_pool: RefCell::new(Vec::new()),
                flushq: FlushQueue::new(),
                fault: host_fault,
                remote,
                telemetry: cfg
                    .telemetry_engaged()
                    .then(|| Rc::new(TelemetryCtx::new(telemetry_window_ns, span_stream.clone()))),
            }));
        }
    }
    for (i, h) in hosts.iter().enumerate() {
        *h.peers.borrow_mut() = hosts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, p)| Rc::downgrade(p))
            .collect();
    }

    SimParts {
        sim,
        cfg,
        filer,
        metrics,
        hosts,
        fault,
        remote: remote_store,
    }
}

/// Spawns the periodic syncer daemons and the optional clock pin. Called
/// after the per-thread replay tasks so both paths share one spawn order.
fn spawn_daemons(parts: &SimParts) {
    let SimParts {
        sim, cfg, hosts, ..
    } = parts;
    for h in hosts {
        match cfg.arch {
            Architecture::Unified => {
                if let Some(period) = cfg.scaled_period(cfg.ram_policy) {
                    sim.spawn_daemon(engine::unified_syncer(Rc::clone(h), Medium::Ram, period));
                }
                if let Some(period) = cfg.scaled_period(cfg.flash_policy) {
                    sim.spawn_daemon(engine::unified_syncer(Rc::clone(h), Medium::Flash, period));
                }
            }
            Architecture::Naive | Architecture::Lookaside => {
                if h.has_ram() {
                    if let Some(period) = cfg.scaled_period(cfg.ram_policy) {
                        sim.spawn_daemon(engine::ram_syncer(Rc::clone(h), period));
                    }
                }
                // The lookaside flash never holds dirty data, so its syncer
                // would be a no-op; only naive needs one.
                if cfg.arch == Architecture::Naive && h.has_flash() {
                    if let Some(period) = cfg.scaled_period(cfg.flash_policy) {
                        sim.spawn_daemon(engine::flash_syncer(Rc::clone(h), period));
                    }
                }
            }
        }
    }

    // Recovery-drain probes: at the close of every filer outage, measure
    // the flush backlog that piled up while write-through was degraded and
    // time how long it takes to drain. Daemons, so they never extend the
    // run past the workload; spawned only when a plan exists, so fault-free
    // runs spawn exactly the pre-fault task set.
    if let Some(fp) = &parts.fault {
        for h in hosts {
            for (_, end_ns) in fp.set.filer.outage_spans() {
                let h = Rc::clone(h);
                let state = Rc::clone(&fp.state);
                let s = sim.clone();
                sim.spawn_daemon(async move {
                    s.sleep_until(SimTime::from_nanos(end_ns)).await;
                    let depth = h.flushq.backlog();
                    if depth > 0 {
                        let t0 = s.now();
                        flush::wait_drained(&h).await;
                        state.note_drain(depth as u64, s.now() - t0);
                    }
                });
            }
        }
    }

    // Recovery re-replication: when a failed shard returns, copy every
    // block whose acknowledged write it missed back from a surviving
    // replica. Backend-to-backend traffic — it pays filer service time on
    // both ends but no client segment time — fanned over a bounded number
    // of repair streams (a sequential drain cannot outpace a large
    // backlog before the run ends; a fleet rebuilds in parallel but
    // bounds the streams to protect foreground traffic). One pass per
    // (shard, outage span), so a copy whose only source is itself still
    // down is requeued for the next pass.
    const REPAIR_STREAMS: usize = 16;
    if let (Some(store), Some(_)) = (&parts.remote, &parts.fault) {
        for k in 0..store.router().shards() {
            for (_, end_ns) in store.faults(k).outage_spans() {
                let store = Rc::clone(store);
                let s = sim.clone();
                sim.spawn_daemon(async move {
                    s.sleep_until(SimTime::from_nanos(end_ns)).await;
                    let queue = Rc::new(RefCell::new(store.take_under_replicated(k)));
                    let drain =
                        |store: Rc<ShardedStore>,
                         s: Sim,
                         queue: Rc<RefCell<Vec<fcache_types::BlockAddr>>>| async move {
                            loop {
                                // Scope the borrow: `while let` would hold the
                                // RefMut across the awaits below.
                                let popped = queue.borrow_mut().pop();
                                let Some(addr) = popped else { break };
                                let now = s.now().as_nanos();
                                let src = store
                                    .router()
                                    .replica_set(addr)
                                    .find(|&r| r != k && store.live_at(r, now));
                                match src {
                                    Some(src) => {
                                        store.filer(src).read_blocks(&[addr]).await;
                                        store.filer(k).write(1).await;
                                        store.note_re_replicated(BLOCK_SIZE, s.now().as_nanos());
                                    }
                                    // No live source right now: leave the copy
                                    // for the next recovery pass.
                                    None => store.requeue_under_replicated(k, addr),
                                }
                            }
                        };
                    for _ in 1..REPAIR_STREAMS {
                        s.spawn_daemon(drain(Rc::clone(&store), s.clone(), Rc::clone(&queue)));
                    }
                    drain(store, s.clone(), queue).await;
                });
            }
        }
    }

    // Optionally pin the clock past the trace so periodic syncers can run.
    if let Some(t) = cfg.min_runtime {
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep_until(t).await;
        });
    }
}

/// Runs the simulation, aggregates the report, and shuts the executor down
/// (breaking task↔executor `Rc` cycles) before surfacing any run error.
fn run_and_collect(parts: &SimParts) -> Result<SimReport, SimError> {
    let SimParts {
        sim,
        cfg,
        filer,
        metrics,
        hosts,
        fault,
        ..
    } = parts;
    let run = sim.run().map_err(SimError::from);

    // Segment counters are shared across a fan-in group, so summing every
    // host's handle would multiply-count shared wires: only group leaders
    // contribute (at fan-in 1, everyone — the pre-fleet accounting).
    let fanin = cfg.net_fanin();
    fn add_seg(net: &mut SegmentStats, s: SegmentStats) {
        net.packets += s.packets;
        net.payload_bytes += s.payload_bytes;
        net.busy += s.busy;
        net.queue_wait += s.queue_wait;
        net.queue_waits += s.queue_waits;
    }

    // Aggregate before shutdown (shutdown drops the host tasks).
    let mut report = SimReport {
        metrics: metrics.snapshot(),
        filer: filer.stats(),
        end_time: sim.now(),
        events: sim.events_processed(),
        ..SimReport::default()
    };
    for (i, h) in hosts.iter().enumerate() {
        report.ram += *h.ram.borrow().stats();
        report.flash += *h.flash.borrow().stats();
        if let Some(u) = &h.unified {
            report.unified += *u.borrow().stats();
        }
        if i % usize::from(fanin) == 0 {
            if let Some(r) = &h.remote {
                // Per-shard wires; `h.segment` aliases `r.segments[0]`, so
                // only the per-shard list is summed.
                for seg in &r.segments {
                    add_seg(&mut report.net, seg.stats());
                }
            } else {
                add_seg(&mut report.net, h.segment.stats());
            }
        }
        report.device += h.dev.stats();
        if let Some(w) = h.dev.take_windows() {
            // Each host numbers its windows from I/O 0; rebase every
            // appended series past the previous host's end so the combined
            // sequence tiles contiguously (hosts append in host-id order).
            let windows = report.device_windows.get_or_insert_with(Vec::new);
            let offset = windows
                .last()
                .map(|l| l.start_io + l.reads + l.writes)
                .unwrap_or(0);
            windows.extend(w.into_iter().map(|mut s| {
                s.start_io += offset;
                s
            }));
        }
    }
    if cfg.log_flash_io {
        let mut log = Vec::new();
        for h in hosts {
            log.extend(h.iolog.take());
        }
        report.flash_iolog = Some(log);
    }
    if let Some(fp) = fault {
        let mut rs = fp.state.snapshot(&fp.acct);
        rs.degraded_time =
            SimTime::from_nanos(fp.set.filer.outage_overlap(report.end_time.as_nanos()));
        report.robustness = rs;
    }
    if let Some(store) = &parts.remote {
        // The shared `filer` is bypassed in remote mode: service counters
        // live in the per-shard filers.
        let end_ns = report.end_time.as_nanos();
        let mut total = fcache_filer::FilerStats::default();
        let mut per_shard = Vec::with_capacity(usize::from(store.router().shards()));
        for k in 0..store.router().shards() {
            let fs = store.shard_stats(k);
            total.fast_reads += fs.fast_reads;
            total.slow_reads += fs.slow_reads;
            total.writes += fs.writes;
            per_shard.push(crate::report::ShardServiceStats {
                fast_reads: fs.fast_reads,
                slow_reads: fs.slow_reads,
                writes: fs.writes,
                outage_ns: store.faults(k).outage_overlap(end_ns),
            });
        }
        report.filer = total;
        report.shard = crate::report::ShardStats {
            shards: store.router().shards(),
            replicas: store.router().replicas(),
            hedge_ns: hosts
                .first()
                .and_then(|h| h.remote.as_ref())
                .and_then(|r| r.hedge_ns)
                .unwrap_or(0),
            per_shard,
            remote: store.stats(end_ns),
        };
    }
    if hosts.iter().any(|h| h.telemetry.is_some()) {
        let mut telem = TelemetryStats::default();
        for h in hosts {
            if let Some(t) = &h.telemetry {
                t.fold_into(&mut telem);
            }
        }
        // Per-window shard availability is global (one fault schedule per
        // shard), filled once at collection rather than summed per host.
        if telem.window_ns > 0 {
            if let Some(store) = &parts.remote {
                let spans: Vec<Vec<(u64, u64)>> = (0..store.router().shards())
                    .map(|k| store.faults(k).outage_spans())
                    .collect();
                for w in &mut telem.windows {
                    let (lo, hi) = (w.start_ns, w.end_ns);
                    w.shard_live_ns = spans
                        .iter()
                        .map(|outages| {
                            let down: u64 = outages
                                .iter()
                                .map(|&(s, e)| e.min(hi).saturating_sub(s.max(lo)))
                                .sum();
                            (hi - lo).saturating_sub(down)
                        })
                        .collect();
                }
            }
        }
        report.telemetry = telem;
        // Final flush: every host shares one stream, flush it once.
        if let Some(stream) = hosts
            .iter()
            .find_map(|h| h.telemetry.as_ref().and_then(|t| t.stream()))
        {
            stream.finish();
        }
    }
    if let Some(topo) = cfg.fleet {
        // Fleet mode: each host recorded into its own sink; the exact
        // fold (counters + bucket-wise histograms) reproduces what one
        // shared sink would have held, and the per-host rows feed the
        // fleet percentiles.
        let mut folded = crate::metrics::MetricsSnapshot::default();
        let mut per_host = Vec::with_capacity(hosts.len());
        for (i, h) in hosts.iter().enumerate() {
            let s = h.metrics.snapshot();
            folded = folded.merged(&s);
            per_host.push(crate::report::HostLoadStats {
                host: topo.host_base + i as u32,
                read_ops: s.read_ops,
                write_ops: s.write_ops,
                read_latency_ns: s.read_latency.as_nanos(),
                write_latency_ns: s.write_latency.as_nanos(),
            });
        }
        report.metrics = folded;
        report.fleet = crate::report::FleetStats {
            topology: Some(topo),
            per_host,
        };
    }

    sim.shutdown();
    run?;
    if cfg.robustness.degraded == DegradedPolicy::Strict {
        if let Some(clause) = fault.as_ref().and_then(|fp| fp.state.first_fail()) {
            return Err(SimError::Faulted { clause });
        }
    }
    Ok(report)
}

/// Immutable raw view of the trace's op slice, handed to replay tasks.
///
/// The executor requires `'static` futures, but the ops live in the caller's
/// `&Trace` borrow. A lifetime-erased pointer is sound here because the ops
/// are only dereferenced while `Sim::run` executes inside [`run_trace`]'s
/// borrow of the trace: every replay task is either completed during the run
/// or dropped by `Sim::shutdown` before `run_trace` returns, and a future
/// that is never polled again never touches the pointer (even if a panic
/// leaks the executor, leaked tasks are never polled).
#[derive(Clone, Copy)]
struct OpsView {
    ptr: *const TraceOp,
    len: usize,
}

impl OpsView {
    fn new(ops: &[TraceOp]) -> Self {
        Self {
            ptr: ops.as_ptr(),
            len: ops.len(),
        }
    }

    fn get(&self, i: usize) -> &TraceOp {
        debug_assert!(i < self.len);
        // SAFETY: `i` is an index produced by the counting sort over the
        // same slice, and the slice outlives every poll (type-level comment).
        unsafe { &*self.ptr.add(i) }
    }
}

/// Runs `trace` under `config`, returning the aggregated report.
///
/// This is the crate's main entry point. The run is fully deterministic:
/// the same configuration and trace always produce the same report. The
/// trace is shared, not copied: replay builds a 4-byte-per-op index once
/// and every thread cursor walks the caller's buffer in place (sweeps
/// replaying one trace across many configurations share a single copy).
///
/// # Examples
///
/// ```
/// use fcache::{run_trace, SimConfig};
/// use fcache_fsmodel::{FsModel, FsModelConfig};
/// use fcache_trace::{generate, TraceGenConfig};
/// use fcache_types::ByteSize;
///
/// let model = FsModel::generate(FsModelConfig {
///     total_bytes: ByteSize::mib(32),
///     seed: 1,
///     ..FsModelConfig::default()
/// });
/// let trace = generate(&model, TraceGenConfig {
///     working_set: ByteSize::mib(2),
///     seed: 2,
///     ..TraceGenConfig::default()
/// });
/// let cfg = SimConfig {
///     ram_size: ByteSize::kib(512),
///     flash_size: ByteSize::mib(4),
///     ..SimConfig::default()
/// };
/// let report = run_trace(&cfg, &trace).unwrap();
/// assert!(report.metrics.read_ops > 0);
/// ```
pub fn run_trace(config: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
    // Size the host/thread grid from the metadata, widened by what the ops
    // actually carry.
    let (mut max_host, mut max_thread) = (0u16, 0u16);
    for op in &trace.ops {
        max_host = max_host.max(op.host().0);
        max_thread = max_thread.max(op.thread().0);
    }
    let n_hosts = u16::max(trace.meta.hosts.max(1), max_host + 1);
    let n_threads = u16::max(trace.meta.threads_per_host.max(1), max_thread + 1);
    let n_slots = n_hosts as usize * n_threads as usize;

    assert!(
        trace.ops.len() <= u32::MAX as usize,
        "trace exceeds the 4-billion-op cursor index range"
    );

    // One index pass: counting-sort op indices by (host, thread) slot. The
    // order array is the only per-run allocation that scales with the
    // trace, and it is shared read-only by every thread task — the ops
    // themselves are never copied ("each application thread can have only
    // one I/O in progress", §5, so per-slot order is all replay needs).
    let slot_of = |op: &TraceOp| op.host().index() * n_threads as usize + op.thread().index();
    let mut starts = vec![0u32; n_slots + 1];
    for op in &trace.ops {
        starts[slot_of(op) + 1] += 1;
    }
    for i in 0..n_slots {
        starts[i + 1] += starts[i];
    }
    let mut next = starts.clone();
    let mut order = vec![0u32; trace.ops.len()];
    for (i, op) in trace.ops.iter().enumerate() {
        let s = slot_of(op);
        order[next[s] as usize] = i as u32;
        next[s] += 1;
    }
    let order: Rc<[u32]> = order.into();

    let parts = build_parts(config, n_hosts);
    let ops = OpsView::new(&trace.ops);

    // One cursor task per slot, in slot order (empty slots spawn a task
    // that completes on its first poll, mirroring the streamed path).
    for slot in 0..n_slots {
        let host = Rc::clone(&parts.hosts[slot / n_threads as usize]);
        let order = Rc::clone(&order);
        let (lo, hi) = (starts[slot] as usize, starts[slot + 1] as usize);
        parts.sim.spawn(async move {
            for &idx in &order[lo..hi] {
                execute_op(&host, ops.get(idx as usize)).await;
            }
        });
    }

    spawn_daemons(&parts);
    run_and_collect(&parts)
}

/// Type-erased handle to the caller's `&mut S` source: a data pointer plus
/// a monomorphized fill thunk, so the `'static` replay tasks can pull
/// chunks without naming the source's lifetime. Sound for the same reason
/// as [`OpsView`]: only dereferenced while `Sim::run` executes inside
/// [`run_source`]'s borrow of the source.
struct RawSource {
    data: *mut (),
    fill: unsafe fn(*mut (), &mut Vec<TraceOp>, usize) -> io::Result<usize>,
}

impl RawSource {
    fn new<S: TraceSource>(source: &mut S) -> Self {
        unsafe fn fill_thunk<S: TraceSource>(
            data: *mut (),
            out: &mut Vec<TraceOp>,
            max: usize,
        ) -> io::Result<usize> {
            // SAFETY: `data` was produced from `&mut S` by `RawSource::new`
            // and is only used while that borrow is live (type-level
            // comment); the feed's `RefCell` serializes access.
            unsafe { (*data.cast::<S>()).next_chunk(out, max) }
        }
        Self {
            data: (source as *mut S).cast(),
            fill: fill_thunk::<S>,
        }
    }

    fn fill(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        // SAFETY: see `RawSource` docs.
        unsafe { (self.fill)(self.data, out, max) }
    }
}

/// Shared chunk feed: per-slot queues refilled from the source on demand.
/// The queues are [`SpillQueue`]s, so inter-thread skew past a bounded
/// resident window overflows to disk instead of growing replay memory —
/// O(chunk) per slot unconditionally, even for a trace whose slots are
/// laid out back to back.
struct Feed {
    source: RawSource,
    queues: Vec<SpillQueue>,
    chunk: Vec<TraceOp>,
    n_threads: usize,
    done: bool,
    error: Option<String>,
}

impl Feed {
    /// Pops the next op for `slot`, pulling chunks from the source until
    /// the slot has one or the stream ends. Refills cost zero simulated
    /// time, matching the materialized path where all ops exist up front.
    fn next_for(&mut self, slot: usize) -> Option<TraceOp> {
        loop {
            match self.queues[slot].pop() {
                Ok(Some(op)) => return Some(op),
                Ok(None) => {}
                Err(e) => {
                    // Spilled backlog that cannot be read back is gone;
                    // fail the run rather than silently dropping ops.
                    self.error = Some(format!("spilled op backlog lost: {e}"));
                    self.done = true;
                    return None;
                }
            }
            if self.done {
                return None;
            }
            self.refill();
        }
    }

    fn refill(&mut self) {
        self.chunk.clear();
        match self.source.fill(&mut self.chunk, TRACE_CHUNK_OPS) {
            Ok(0) => self.done = true,
            Ok(_) => {
                for op in self.chunk.drain(..) {
                    let slot = op.host().index() * self.n_threads + op.thread().index();
                    if slot >= self.queues.len() {
                        self.error = Some(format!(
                            "op for {} {} outside the {}-host/{}-thread grid its meta promised",
                            op.host(),
                            op.thread(),
                            self.queues.len() / self.n_threads,
                            self.n_threads,
                        ));
                        self.done = true;
                        return;
                    }
                    self.queues[slot].push(op);
                }
            }
            Err(e) => {
                self.error = Some(e.to_string());
                self.done = true;
            }
        }
    }
}

/// Replays a streamed [`TraceSource`] under `config`.
///
/// Ops are pulled in bounded chunks ([`TRACE_CHUNK_OPS`]) and fanned into
/// per-thread queues, so replay memory is O(chunk + inter-thread skew)
/// regardless of trace length — a generated multi-gigabyte workload or an
/// archived `FCTRACE1` file replays without ever being resident. Reports
/// are bit-identical to materializing the same ops and calling
/// [`run_trace`].
///
/// The host/thread grid comes from [`TraceSource::meta`]; an op outside
/// that grid fails the run with [`SimError::Source`].
pub fn run_source<S: TraceSource>(
    config: &SimConfig,
    source: &mut S,
) -> Result<SimReport, SimError> {
    let meta = source.meta();
    let n_hosts = meta.hosts.max(1);
    let n_threads = meta.threads_per_host.max(1);
    let n_slots = n_hosts as usize * n_threads as usize;

    // Zero-copy fast path: a random-access source hands every slot its
    // own cursor, so ops flow straight from the source to the engine with
    // no shared chunk buffer or per-slot queues at all.
    if source.fork_slot(0, 0).is_some() {
        return run_forked(config, source, n_hosts, n_threads);
    }

    let parts = build_parts(config, n_hosts);
    let feed = Rc::new(RefCell::new(Feed {
        source: RawSource::new(source),
        queues: (0..n_slots).map(|_| SpillQueue::new()).collect(),
        chunk: Vec::with_capacity(TRACE_CHUNK_OPS),
        n_threads: n_threads as usize,
        done: false,
        error: None,
    }));

    for slot in 0..n_slots {
        let host = Rc::clone(&parts.hosts[slot / n_threads as usize]);
        let feed = Rc::clone(&feed);
        parts.sim.spawn(async move {
            loop {
                // The borrow must not span the await (a `while let` would
                // hold the `RefMut` through the body): copy the op out of
                // the queue, drop the borrow, then run the engine.
                let next = feed.borrow_mut().next_for(slot);
                let Some(op) = next else { break };
                execute_op(&host, &op).await;
            }
        });
    }

    spawn_daemons(&parts);
    let report = run_and_collect(&parts);
    if let Some(msg) = feed.borrow_mut().error.take() {
        return Err(SimError::Source(msg));
    }
    report
}

/// The forked replay path: one [`SlotCursor`] per `(host, thread)` slot,
/// each task pulling its own ops straight out of the source.
///
/// The task loop has exactly the same shape as the chunk-fed one — a
/// synchronous pull, then one `execute_op` await per op — so both paths
/// poll their tasks identically and produce bit-identical reports
/// (including executor event counts; pinned by `tests/trace_streaming.rs`).
fn run_forked<S: TraceSource + ?Sized>(
    config: &SimConfig,
    source: &S,
    n_hosts: u16,
    n_threads: u16,
) -> Result<SimReport, SimError> {
    let n_slots = n_hosts as usize * n_threads as usize;
    let parts = build_parts(config, n_hosts);
    let error: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));

    for slot in 0..n_slots {
        let host = Rc::clone(&parts.hosts[slot / n_threads as usize]);
        let cursor = source
            .fork_slot(
                (slot / n_threads as usize) as u16,
                (slot % n_threads as usize) as u16,
            )
            .expect("forkable source must fork every slot");
        // SAFETY: erases the borrow of `source` so the `'static` task can
        // hold the cursor. Sound for the same reason as `OpsView` and
        // `RawSource`: the cursor is only used while `Sim::run` executes
        // inside this function's borrow of the source — every task is
        // completed or dropped by `Sim::shutdown` before we return, and a
        // task that is never polled never touches it.
        let mut cursor: Box<dyn SlotCursor + 'static> =
            unsafe { std::mem::transmute::<Box<dyn SlotCursor + '_>, _>(cursor) };
        let error = Rc::clone(&error);
        parts.sim.spawn(async move {
            loop {
                let next = cursor.next();
                match next {
                    Ok(Some(op)) => {
                        execute_op(&host, &op).await;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // First failing slot wins (deterministic: tasks
                        // run in a deterministic order and every slot
                        // stops at the same offending record anyway).
                        let mut err = error.borrow_mut();
                        if err.is_none() {
                            *err = Some(e.to_string());
                        }
                        break;
                    }
                }
            }
        });
    }

    spawn_daemons(&parts);
    let report = run_and_collect(&parts);
    if let Some(msg) = error.borrow_mut().take() {
        return Err(SimError::Source(msg));
    }
    report
}
