//! Building and running a complete simulation from a configuration and a
//! trace.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fcache_cache::{BlockCache, Medium, UnifiedCache};
use fcache_des::{RunError, Sim};
use fcache_device::IoLog;
use fcache_filer::{Filer, FilerConfig};
use fcache_net::Segment;
use fcache_types::{FxHashSet, HostId, Trace, TraceOp};

use crate::arch::Architecture;
use crate::config::SimConfig;
use crate::engine::{self, execute_op};
use crate::host::HostCtx;
use crate::metrics::Metrics;
use crate::report::SimReport;

/// Error from a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The discrete-event core found blocked tasks with no pending events.
    Deadlock {
        /// Number of stuck tasks.
        live_tasks: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { live_tasks } => {
                write!(f, "simulation deadlocked with {live_tasks} task(s) blocked")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunError> for SimError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Deadlock { live_tasks } => SimError::Deadlock { live_tasks },
        }
    }
}

/// Runs `trace` under `config`, returning the aggregated report.
///
/// This is the crate's main entry point. The run is fully deterministic:
/// the same configuration and trace always produce the same report.
///
/// # Examples
///
/// ```
/// use fcache::{run_trace, SimConfig};
/// use fcache_fsmodel::{FsModel, FsModelConfig};
/// use fcache_trace::{generate, TraceGenConfig};
/// use fcache_types::ByteSize;
///
/// let model = FsModel::generate(FsModelConfig {
///     total_bytes: ByteSize::mib(32),
///     seed: 1,
///     ..FsModelConfig::default()
/// });
/// let trace = generate(&model, TraceGenConfig {
///     working_set: ByteSize::mib(2),
///     seed: 2,
///     ..TraceGenConfig::default()
/// });
/// let cfg = SimConfig {
///     ram_size: ByteSize::kib(512),
///     flash_size: ByteSize::mib(4),
///     ..SimConfig::default()
/// };
/// let report = run_trace(&cfg, &trace).unwrap();
/// assert!(report.metrics.read_ops > 0);
/// ```
pub fn run_trace(config: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
    let cfg = Rc::new(config.clone());
    let sim = Sim::new();

    // Derive the filer draw seed from both the filer seed and the run seed
    // so distinct configurations decorrelate.
    let filer_cfg = FilerConfig {
        seed: cfg.filer.seed ^ cfg.seed.rotate_left(17),
        ..cfg.filer
    };
    let filer = Filer::new(sim.clone(), filer_cfg);
    let metrics = Metrics::new();
    let warmup_over = Rc::new(Cell::new(false));

    let stats = trace.stats();
    let n_hosts = u16::max(trace.meta.hosts.max(1), stats.max_host + 1);
    let n_threads = u16::max(trace.meta.threads_per_host.max(1), stats.max_thread + 1);

    // Build hosts.
    let hosts: Vec<Rc<HostCtx>> = (0..n_hosts)
        .map(|i| {
            let segment = if cfg.duplex_network {
                Segment::new_duplex(sim.clone(), cfg.net)
            } else {
                Segment::new(sim.clone(), cfg.net)
            };
            let unified = (cfg.arch == Architecture::Unified)
                .then(|| RefCell::new(UnifiedCache::new(cfg.ram_blocks(), cfg.flash_blocks())));
            Rc::new(HostCtx {
                id: HostId(i),
                sim: sim.clone(),
                cfg: Rc::clone(&cfg),
                ram: RefCell::new(BlockCache::with_policy(
                    if cfg.arch == Architecture::Unified {
                        0
                    } else {
                        cfg.ram_blocks()
                    },
                    cfg.replacement,
                )),
                flash: RefCell::new(BlockCache::with_policy(
                    if cfg.arch == Architecture::Unified {
                        0
                    } else {
                        cfg.flash_blocks()
                    },
                    cfg.replacement,
                )),
                unified,
                segment,
                filer: filer.clone(),
                metrics: metrics.clone(),
                iolog: if cfg.log_flash_io {
                    IoLog::new()
                } else {
                    IoLog::disabled()
                },
                ram_flush_pending: RefCell::new(FxHashSet::default()),
                flash_flush_pending: RefCell::new(FxHashSet::default()),
                peers: RefCell::new(Vec::new()),
                warmup_over: Rc::clone(&warmup_over),
                buf_pool: RefCell::new(Vec::new()),
            })
        })
        .collect();
    for (i, h) in hosts.iter().enumerate() {
        *h.peers.borrow_mut() = hosts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, p)| Rc::downgrade(p))
            .collect();
    }

    // Partition the trace per (host, thread), preserving order: "each
    // application thread can have only one I/O in progress" (§5).
    let mut per_thread: Vec<Vec<TraceOp>> = vec![Vec::new(); n_hosts as usize * n_threads as usize];
    for op in &trace.ops {
        per_thread[op.host.index() * n_threads as usize + op.thread.index()].push(*op);
    }
    for (slot, ops) in per_thread.into_iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        let host = Rc::clone(&hosts[slot / n_threads as usize]);
        sim.spawn(async move {
            for op in ops {
                execute_op(&host, &op).await;
            }
        });
    }

    // Periodic syncer daemons.
    for h in &hosts {
        match cfg.arch {
            Architecture::Unified => {
                if let Some(period) = cfg.scaled_period(cfg.ram_policy) {
                    sim.spawn_daemon(engine::unified_syncer(Rc::clone(h), Medium::Ram, period));
                }
                if let Some(period) = cfg.scaled_period(cfg.flash_policy) {
                    sim.spawn_daemon(engine::unified_syncer(Rc::clone(h), Medium::Flash, period));
                }
            }
            Architecture::Naive | Architecture::Lookaside => {
                if h.has_ram() {
                    if let Some(period) = cfg.scaled_period(cfg.ram_policy) {
                        sim.spawn_daemon(engine::ram_syncer(Rc::clone(h), period));
                    }
                }
                // The lookaside flash never holds dirty data, so its syncer
                // would be a no-op; only naive needs one.
                if cfg.arch == Architecture::Naive && h.has_flash() {
                    if let Some(period) = cfg.scaled_period(cfg.flash_policy) {
                        sim.spawn_daemon(engine::flash_syncer(Rc::clone(h), period));
                    }
                }
            }
        }
    }

    // Optionally pin the clock past the trace so periodic syncers can run.
    if let Some(t) = cfg.min_runtime {
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep_until(t).await;
        });
    }

    let run = sim.run().map_err(SimError::from);

    // Aggregate before shutdown (shutdown drops the host tasks).
    let mut report = SimReport {
        metrics: metrics.snapshot(),
        filer: filer.stats(),
        end_time: sim.now(),
        events: sim.events_processed(),
        ..SimReport::default()
    };
    for h in &hosts {
        report.ram += *h.ram.borrow().stats();
        report.flash += *h.flash.borrow().stats();
        if let Some(u) = &h.unified {
            report.unified += *u.borrow().stats();
        }
        let s = h.segment.stats();
        report.net.packets += s.packets;
        report.net.payload_bytes += s.payload_bytes;
        report.net.busy += s.busy;
    }
    if cfg.log_flash_io {
        let mut log = Vec::new();
        for h in &hosts {
            log.extend(h.iolog.take());
        }
        report.flash_iolog = Some(log);
    }

    sim.shutdown();
    run?;
    Ok(report)
}
