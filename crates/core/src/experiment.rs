//! Scaled experiment workbench.
//!
//! Paper-scale experiments (60–640 GB working sets against a 1.4 TB file
//! server with up to 128 GB of flash) are too large to sweep on a laptop,
//! so every benchmark runs at a **linear scale factor**: all byte
//! quantities — file-server model, working set, RAM, flash — are divided by
//! the factor while latencies, the 4 KB block size, and all ratios stay
//! unchanged. Cache hit rates depend only on the size *ratios* and
//! latencies are per-block constants, so curve shapes are preserved
//! (DESIGN.md §4). Factor 1 reproduces paper scale exactly.
//!
//! [`Workbench`] packages a scaled file-server model with helpers that
//! accept paper-scale quantities and scale them internally, so experiment
//! code reads exactly like the paper ("60 GB working set, 8 GB RAM, 64 GB
//! flash").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fcache_fsmodel::{FsModel, FsModelConfig};
use fcache_trace::{TraceGenConfig, TraceStream};
use fcache_types::{ByteSize, Trace};

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::sim::{run_source, run_trace, SimError};

/// One unit of sweep work: a configuration to run against a trace.
///
/// The trace is borrowed so sweeps that replay one workload across many
/// configurations (every paper figure) share a single copy.
pub type SweepJob<'a> = (SimConfig, &'a Trace);

/// Runs independent `(SimConfig, Trace)` jobs across threads, returning
/// results in job order.
///
/// Each simulation is single-threaded and fully deterministic, so fanning
/// the jobs out over a scoped-thread worker pool changes nothing about any
/// individual result: `run_sweep` output is bit-identical to calling
/// [`run_trace`] serially over the same jobs (asserted by
/// `tests/sweep_determinism.rs`). Workers pull jobs from a shared atomic
/// cursor, so heterogeneous job lengths load-balance; results land in a
/// per-job slot, so completion order never affects output order.
///
/// `threads` bounds the worker count; `None` uses the machine's available
/// parallelism. The figure harnesses and the CLI sweep command route
/// through this function.
pub fn run_sweep(
    jobs: &[SweepJob<'_>],
    threads: Option<usize>,
) -> Vec<Result<SimReport, SimError>> {
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, jobs.len().max(1));

    if workers <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|(cfg, trace)| run_trace(cfg, trace))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SimReport, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((cfg, trace)) = jobs.get(i) else {
                    break;
                };
                let result = run_trace(cfg, trace);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Workload description in paper-scale units.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Working-set size at paper scale (e.g. `ByteSize::gib(80)`).
    pub working_set: ByteSize,
    /// Fraction of operations that are writes (baseline 0.3).
    pub write_fraction: f64,
    /// Number of hosts (baseline 1; consistency experiments use 2).
    pub hosts: u16,
    /// Number of distinct working sets (consistency worst case: 1 shared).
    pub ws_count: usize,
    /// Drop the warmup half of the trace instead of flagging it — "this is
    /// equivalent to having a non-persistent flash cache and crashing at
    /// the start of the simulator run" (§7.8, Figure 10's *not warmed*).
    pub skip_warmup: bool,
    /// Trace generation seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            working_set: ByteSize::gib(60),
            write_fraction: 0.3,
            hosts: 1,
            ws_count: 1,
            skip_warmup: false,
            seed: 0x0b5e_55ed,
        }
    }
}

impl WorkloadSpec {
    /// The 60 GB baseline workload of §4.
    pub fn baseline_60g() -> Self {
        Self::default()
    }

    /// The 80 GB baseline workload of §4.
    pub fn baseline_80g() -> Self {
        Self {
            working_set: ByteSize::gib(80),
            ..Self::default()
        }
    }
}

/// A scaled file-server model plus scaling-aware run helpers.
pub struct Workbench {
    scale: u64,
    model: FsModel,
}

impl Workbench {
    /// Builds the paper's 1.4 TB Impressions-style model at `1/scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn new(scale: u64, seed: u64) -> Self {
        assert!(scale > 0, "scale factor must be nonzero");
        let model = FsModel::generate(FsModelConfig::paper_scaled(scale, seed));
        Self { scale, model }
    }

    /// The scale factor in force.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The scaled file-server model.
    pub fn model(&self) -> &FsModel {
        &self.model
    }

    /// Generates a trace for a paper-scale workload spec by collecting the
    /// stream [`Workbench::make_stream`] builds — one config site, so the
    /// materialized and streamed paths cannot drift apart.
    pub fn make_trace(&self, spec: &WorkloadSpec) -> Trace {
        let mut stream = self.make_stream(spec);
        let mut trace = Trace::new(stream.meta().clone());
        while let Some(op) = stream.next_op() {
            trace.ops.push(op);
        }
        trace
    }

    /// Builds a streaming generator for a paper-scale workload spec: the
    /// same ops [`Workbench::make_trace`] would materialize, deliverable in
    /// bounded chunks.
    pub fn make_stream(&self, spec: &WorkloadSpec) -> TraceStream<'_> {
        let cfg = TraceGenConfig {
            hosts: spec.hosts,
            working_set: spec.working_set.scaled_down(self.scale),
            ws_count: spec.ws_count,
            write_fraction: spec.write_fraction,
            seed: spec.seed,
            ..TraceGenConfig::default()
        };
        TraceStream::new(&self.model, cfg).skip_warmup(spec.skip_warmup)
    }

    /// Runs a paper-scale configuration against a workload: cache sizes in
    /// `cfg` are given at paper scale and scaled down here.
    pub fn run(&self, cfg: &SimConfig, spec: &WorkloadSpec) -> Result<SimReport, SimError> {
        let scaled = cfg.clone().scaled_down(self.scale);
        let trace = self.make_trace(spec);
        run_trace(&scaled, &trace)
    }

    /// Runs a paper-scale configuration against a *streamed* workload:
    /// generation feeds the simulator in bounded chunks, so memory stays
    /// O(cache + chunk) no matter how large the trace volume is. The
    /// report is bit-identical to [`Workbench::run`] for the same inputs.
    pub fn run_streamed(
        &self,
        cfg: &SimConfig,
        spec: &WorkloadSpec,
    ) -> Result<SimReport, SimError> {
        let scaled = cfg.clone().scaled_down(self.scale);
        let mut stream = self.make_stream(spec);
        run_source(&scaled, &mut stream)
    }

    /// Runs a paper-scale configuration against a pre-generated trace
    /// (for sweeps that reuse one workload across many configurations).
    pub fn run_with_trace(&self, cfg: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
        let scaled = cfg.clone().scaled_down(self.scale);
        run_trace(&scaled, trace)
    }

    /// Runs many paper-scale configurations against one pre-generated
    /// trace in parallel via [`run_sweep`], preserving input order.
    pub fn run_sweep_with_trace(
        &self,
        cfgs: &[SimConfig],
        trace: &Trace,
    ) -> Vec<Result<SimReport, SimError>> {
        let jobs: Vec<SweepJob<'_>> = cfgs
            .iter()
            .map(|cfg| (cfg.clone().scaled_down(self.scale), trace))
            .collect();
        run_sweep(&jobs, None)
    }
}

impl std::fmt::Debug for Workbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workbench")
            .field("scale", &self.scale)
            .field("model_bytes", &self.model.total_bytes())
            .field("files", &self.model.file_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_scales_model() {
        let wb = Workbench::new(4096, 1);
        // 1400 GiB / 4096 = 350 MiB.
        let target = (1400u64 << 30) / 4096;
        assert!(wb.model().total_bytes() >= target);
        assert_eq!(wb.scale(), 4096);
    }

    #[test]
    fn make_trace_scales_working_set() {
        let wb = Workbench::new(4096, 1);
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(64),
            ..WorkloadSpec::default()
        };
        let t = wb.make_trace(&spec);
        // Scaled WS = 16 MiB; volume = 4 × WS = 64 MiB = 16384 blocks.
        let blocks = t.stats().blocks;
        assert!(blocks >= 16384, "blocks {blocks}");
        assert!(blocks < 16384 + 2048, "blocks {blocks}");
    }

    #[test]
    fn skip_warmup_drops_prefix() {
        let wb = Workbench::new(4096, 1);
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(64),
            skip_warmup: true,
            ..WorkloadSpec::default()
        };
        let t = wb.make_trace(&spec);
        assert!(t.ops.iter().all(|o| !o.warmup()));
        let full = wb.make_trace(&WorkloadSpec {
            skip_warmup: false,
            ..spec
        });
        assert!(t.len() < full.len());
    }

    #[test]
    fn baseline_specs() {
        assert_eq!(WorkloadSpec::baseline_60g().working_set, ByteSize::gib(60));
        assert_eq!(WorkloadSpec::baseline_80g().working_set, ByteSize::gib(80));
    }

    #[test]
    #[should_panic(expected = "scale factor must be nonzero")]
    fn zero_scale_panics() {
        let _ = Workbench::new(0, 1);
    }
}
