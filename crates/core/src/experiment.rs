//! Scaled experiment workbench.
//!
//! Paper-scale experiments (60–640 GB working sets against a 1.4 TB file
//! server with up to 128 GB of flash) are too large to sweep on a laptop,
//! so every benchmark runs at a **linear scale factor**: all byte
//! quantities — file-server model, working set, RAM, flash — are divided by
//! the factor while latencies, the 4 KB block size, and all ratios stay
//! unchanged. Cache hit rates depend only on the size *ratios* and
//! latencies are per-block constants, so curve shapes are preserved
//! (DESIGN.md §4). Factor 1 reproduces paper scale exactly.
//!
//! [`Workbench`] packages a scaled file-server model with helpers that
//! accept paper-scale quantities and scale them internally, so experiment
//! code reads exactly like the paper ("60 GB working set, 8 GB RAM, 64 GB
//! flash").

use fcache_fsmodel::{FsModel, FsModelConfig};
use fcache_trace::{TraceGenConfig, TraceStream};
use fcache_types::{ByteSize, Trace};

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::scenario::{Scenario, Sweep, SweepResults, Workload};
use crate::sim::SimError;

/// One unit of sweep work: a configuration to run against a trace.
///
/// The trace is borrowed so sweeps that replay one workload across many
/// configurations (every paper figure) share a single copy.
pub type SweepJob<'a> = (SimConfig, &'a Trace);

/// Runs independent `(SimConfig, Trace)` jobs across threads, returning
/// results in job order.
///
/// Thin shim over the [`Sweep`] builder for callers that want a bare
/// `Vec<Result>` back: each job becomes a [`Scenario`] over
/// [`Workload::trace`], so the fan-out, determinism, and job-order
/// guarantees are exactly [`Sweep::run`]'s (bit-identical to a serial
/// [`run_trace`](crate::run_trace) loop, asserted by
/// `tests/sweep_determinism.rs`).
///
/// `threads` bounds the worker count; `None` uses the machine's available
/// parallelism. Prefer [`Sweep`] directly for labeled results, streamed
/// workloads, or incremental sinks.
pub fn run_sweep(
    jobs: &[SweepJob<'_>],
    threads: Option<usize>,
) -> Vec<Result<SimReport, SimError>> {
    let mut sweep = Sweep::new().threads(threads.unwrap_or(0));
    for (i, (cfg, trace)) in jobs.iter().enumerate() {
        sweep = sweep.scenario(
            format!("job{i}"),
            Scenario::new(cfg.clone(), Workload::trace(trace)),
        );
    }
    sweep
        .run()
        .into_iter()
        .map(|item| match item.error {
            Some(e) => Err(e),
            None => Ok(item.report.expect("ok sweep item retains its report")),
        })
        .collect()
}

/// Workload description in paper-scale units.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Working-set size at paper scale (e.g. `ByteSize::gib(80)`).
    pub working_set: ByteSize,
    /// Fraction of operations that are writes (baseline 0.3).
    pub write_fraction: f64,
    /// Number of hosts (baseline 1; consistency experiments use 2).
    pub hosts: u16,
    /// Number of distinct working sets (consistency worst case: 1 shared).
    pub ws_count: usize,
    /// Drop the warmup half of the trace instead of flagging it — "this is
    /// equivalent to having a non-persistent flash cache and crashing at
    /// the start of the simulator run" (§7.8, Figure 10's *not warmed*).
    pub skip_warmup: bool,
    /// Trace generation seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            working_set: ByteSize::gib(60),
            write_fraction: 0.3,
            hosts: 1,
            ws_count: 1,
            skip_warmup: false,
            seed: 0x0b5e_55ed,
        }
    }
}

impl WorkloadSpec {
    /// The 60 GB baseline workload of §4.
    pub fn baseline_60g() -> Self {
        Self::default()
    }

    /// A compact label naming this workload's axes
    /// (`ws=80G wr=30% seed=42`, plus `hosts=`/`wsc=`/`cold` when
    /// off-baseline). Used as the workload half of a sweep grid's
    /// composite job labels — and label-based resume
    /// ([`Sweep::resume_from`]) requires distinct specs to get distinct
    /// labels, so every field that commonly forms an axis is included:
    /// the seed always (two specs differing only in seed are different
    /// workloads), and the write percentage at full precision down to
    /// 0.01% (trailing zeros trimmed).
    pub fn label(&self) -> String {
        use std::fmt::Write as _;
        // {:.2} then trim: "30.00" → "30", "12.50" → "12.5". Plain `{}`
        // of `write_fraction * 100.0` would leak float noise
        // ("30.000000000000004").
        let pct = format!("{:.2}", self.write_fraction * 100.0);
        let pct = pct.trim_end_matches('0').trim_end_matches('.');
        let mut s = format!("ws={} wr={pct}% seed={}", self.working_set, self.seed);
        if self.hosts != 1 {
            let _ = write!(s, " hosts={}", self.hosts);
        }
        if self.ws_count != 1 {
            let _ = write!(s, " wsc={}", self.ws_count);
        }
        if self.skip_warmup {
            s.push_str(" cold");
        }
        s
    }

    /// The 80 GB baseline workload of §4.
    pub fn baseline_80g() -> Self {
        Self {
            working_set: ByteSize::gib(80),
            ..Self::default()
        }
    }
}

/// A scaled file-server model plus scaling-aware run helpers.
pub struct Workbench {
    scale: u64,
    model: FsModel,
}

impl Workbench {
    /// Builds the paper's 1.4 TB Impressions-style model at `1/scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn new(scale: u64, seed: u64) -> Self {
        assert!(scale > 0, "scale factor must be nonzero");
        let model = FsModel::generate(FsModelConfig::paper_scaled(scale, seed));
        Self { scale, model }
    }

    /// The scale factor in force.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The scaled file-server model.
    pub fn model(&self) -> &FsModel {
        &self.model
    }

    /// Generates a trace for a paper-scale workload spec by collecting the
    /// stream [`Workbench::make_stream`] builds — one config site, so the
    /// materialized and streamed paths cannot drift apart.
    pub fn make_trace(&self, spec: &WorkloadSpec) -> Trace {
        let mut stream = self.make_stream(spec);
        let mut trace = Trace::new(stream.meta().clone());
        while let Some(op) = stream.next_op() {
            trace.ops.push(op);
        }
        trace
    }

    /// Builds a streaming generator for a paper-scale workload spec: the
    /// same ops [`Workbench::make_trace`] would materialize, deliverable in
    /// bounded chunks.
    pub fn make_stream(&self, spec: &WorkloadSpec) -> TraceStream<'_> {
        let cfg = TraceGenConfig {
            hosts: spec.hosts,
            working_set: spec.working_set.scaled_down(self.scale),
            ws_count: spec.ws_count,
            write_fraction: spec.write_fraction,
            seed: spec.seed,
            ..TraceGenConfig::default()
        };
        TraceStream::new(&self.model, cfg).skip_warmup(spec.skip_warmup)
    }

    /// A paper-scale workload spec as a *streamed* [`Workload`]: every
    /// run or sweep job regenerates its own [`TraceStream`] from this
    /// workbench's model, so resident op memory is O(chunk) per job no
    /// matter how large the workload volume is. Bit-identical to
    /// materializing [`Workbench::make_trace`] and replaying that.
    pub fn workload(&self, spec: &WorkloadSpec) -> Workload<'_> {
        let spec = spec.clone();
        Workload::stream(move || self.make_stream(&spec))
    }

    /// Builds a [`Scenario`] for a paper-scale configuration (scaled down
    /// here) against the streamed workload of `spec`.
    pub fn scenario(&self, cfg: &SimConfig, spec: &WorkloadSpec) -> Scenario<'_> {
        Scenario::new(cfg.clone().scaled_down(self.scale), self.workload(spec))
    }

    /// Builds a [`Sweep`] over `workload` from paper-scale configurations
    /// (scaled down here), auto-labeled by index, architecture, and cache
    /// sizes. Chain [`Sweep::threads`] / [`Sweep::sink`] before running.
    pub fn sweep<'a>(&self, cfgs: &[SimConfig], workload: Workload<'a>) -> Sweep<'a> {
        Sweep::over(workload).configs(cfgs.iter().map(|cfg| cfg.clone().scaled_down(self.scale)))
    }

    /// Builds the labeled *workload axis* for a sweep grid from paper-scale
    /// workload specs: each spec becomes a streamed [`Workload`] (per-job
    /// regenerated, O(chunk) resident) labeled by [`WorkloadSpec::label`].
    /// Feed the result to [`Sweep::workloads`] and every configuration
    /// added afterwards crosses the whole axis — the Figures 8/10/11
    /// config × workload grid in one call.
    pub fn workloads(&self, specs: &[WorkloadSpec]) -> Vec<(String, Workload<'_>)> {
        specs
            .iter()
            .map(|spec| (spec.label(), self.workload(spec)))
            .collect()
    }

    /// Runs a paper-scale configuration against a workload: cache sizes in
    /// `cfg` are given at paper scale and scaled down here.
    pub fn run(&self, cfg: &SimConfig, spec: &WorkloadSpec) -> Result<SimReport, SimError> {
        let scaled = cfg.clone().scaled_down(self.scale);
        let trace = self.make_trace(spec);
        // Bind the scenario so it (and its borrow of `trace`) drops before
        // the trace does.
        let scenario = Scenario::new(scaled, Workload::trace(&trace));
        scenario.run()
    }

    /// Runs a paper-scale configuration against a *streamed* workload:
    /// generation feeds the simulator in bounded chunks, so memory stays
    /// O(cache + chunk) no matter how large the trace volume is. The
    /// report is bit-identical to [`Workbench::run`] for the same inputs.
    pub fn run_streamed(
        &self,
        cfg: &SimConfig,
        spec: &WorkloadSpec,
    ) -> Result<SimReport, SimError> {
        self.scenario(cfg, spec).run()
    }

    /// Runs a paper-scale configuration against a pre-generated trace
    /// (for sweeps that reuse one workload across many configurations).
    pub fn run_with_trace(&self, cfg: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
        let scaled = cfg.clone().scaled_down(self.scale);
        Scenario::new(scaled, Workload::trace(trace)).run()
    }

    /// Runs many paper-scale configurations against one pre-generated
    /// trace in parallel via [`Sweep`], preserving input order.
    pub fn run_sweep_with_trace(&self, cfgs: &[SimConfig], trace: &Trace) -> SweepResults {
        self.sweep(cfgs, Workload::trace(trace)).run()
    }
}

impl std::fmt::Debug for Workbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workbench")
            .field("scale", &self.scale)
            .field("model_bytes", &self.model.total_bytes())
            .field("files", &self.model.file_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_scales_model() {
        let wb = Workbench::new(4096, 1);
        // 1400 GiB / 4096 = 350 MiB.
        let target = (1400u64 << 30) / 4096;
        assert!(wb.model().total_bytes() >= target);
        assert_eq!(wb.scale(), 4096);
    }

    #[test]
    fn make_trace_scales_working_set() {
        let wb = Workbench::new(4096, 1);
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(64),
            ..WorkloadSpec::default()
        };
        let t = wb.make_trace(&spec);
        // Scaled WS = 16 MiB; volume = 4 × WS = 64 MiB = 16384 blocks.
        let blocks = t.stats().blocks;
        assert!(blocks >= 16384, "blocks {blocks}");
        assert!(blocks < 16384 + 2048, "blocks {blocks}");
    }

    #[test]
    fn skip_warmup_drops_prefix() {
        let wb = Workbench::new(4096, 1);
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(64),
            skip_warmup: true,
            ..WorkloadSpec::default()
        };
        let t = wb.make_trace(&spec);
        assert!(t.ops.iter().all(|o| !o.warmup()));
        let full = wb.make_trace(&WorkloadSpec {
            skip_warmup: false,
            ..spec
        });
        assert!(t.len() < full.len());
    }

    #[test]
    fn baseline_specs() {
        assert_eq!(WorkloadSpec::baseline_60g().working_set, ByteSize::gib(60));
        assert_eq!(WorkloadSpec::baseline_80g().working_set, ByteSize::gib(80));
    }

    #[test]
    fn workload_labels_distinguish_axis_specs() {
        let base = WorkloadSpec {
            working_set: ByteSize::gib(80),
            write_fraction: 0.3,
            seed: 1,
            ..WorkloadSpec::default()
        };
        assert_eq!(base.label(), "ws=80G wr=30% seed=1");
        // Seed-only axes (the "≥2 seeds" grids) must not collide.
        let other_seed = WorkloadSpec {
            seed: 2,
            ..base.clone()
        };
        assert_ne!(base.label(), other_seed.label());
        // Fractional percentages survive without float-noise leakage.
        let frac = WorkloadSpec {
            write_fraction: 0.125,
            ..base.clone()
        };
        assert!(frac.label().contains("wr=12.5%"), "{}", frac.label());
        let off_baseline = WorkloadSpec {
            hosts: 2,
            skip_warmup: true,
            ..base
        };
        assert!(off_baseline.label().ends_with("hosts=2 cold"));
    }

    #[test]
    #[should_panic(expected = "scale factor must be nonzero")]
    fn zero_scale_panics() {
        let _ = Workbench::new(0, 1);
    }
}
