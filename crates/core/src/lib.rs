//! Client-side flash-cache simulator — reproduction of *Flash Caching on
//! the Storage Client* (Holland, Angelino, Wald, Seltzer; USENIX ATC 2013).
//!
//! The paper studies flash as a cache on the **client** side of a networked
//! storage environment: compute servers ("hosts") with a RAM buffer cache
//! and a flash cache, talking to a shared file server ("filer") over
//! private network segments. This crate is the trace-driven simulator at
//! the center of that study:
//!
//! - three cache architectures ([`Architecture`]): *naive*, *lookaside*
//!   (Mercury-style), and *unified*;
//! - seven writeback policies per tier ([`WritebackPolicy`]), giving the
//!   49-combination policy surface of Figure 2;
//! - the paper's timing models for RAM, flash, network, and filer
//!   ([`SimConfig`], Table 1);
//! - instant global-knowledge cache-consistency invalidation (§3.8) and
//!   persistence modeling (§7.8).
//!
//! # Quick start
//!
//! The run surface is the [`Scenario`]/[`Sweep`] builder pair over a
//! pluggable [`Workload`] (see [`scenario`]): one configuration × one
//! workload is a `Scenario`; a labeled grid of configurations is a
//! `Sweep` (cross a workload axis in with [`Sweep::workloads`]).
//! Workloads replay a shared in-memory trace ([`Workload::trace`]),
//! regenerate a stream per job ([`Workload::stream`] — sweep memory
//! O(chunk × jobs) instead of a resident trace), or stream an archived
//! `FCTRACE1` file ([`Workload::file`]); all three are bit-identical for
//! the same ops. Sweep results stream through [`ResultSink`]s (see
//! [`results`]): durable, schema-versioned JSONL rows with exact
//! `SimReport` round-trips, making interrupted sweeps resumable
//! ([`Sweep::resume_from`]) and every run a diffable artifact.
//!
//! ```
//! use fcache::{Scenario, SimConfig, Sweep, Workload};
//! use fcache_fsmodel::{FsModel, FsModelConfig};
//! use fcache_trace::{generate, TraceGenConfig};
//! use fcache_types::ByteSize;
//!
//! // A laptop-scale version of the paper's baseline experiment.
//! let model = FsModel::generate(FsModelConfig {
//!     total_bytes: ByteSize::mib(64),
//!     seed: 1,
//!     ..FsModelConfig::default()
//! });
//! let trace = generate(&model, TraceGenConfig {
//!     working_set: ByteSize::mib(4),
//!     seed: 2,
//!     ..TraceGenConfig::default()
//! });
//! let cfg = SimConfig {
//!     ram_size: ByteSize::mib(1),
//!     flash_size: ByteSize::mib(8),
//!     ..SimConfig::baseline()
//! };
//! let report = Scenario::new(cfg.clone(), Workload::trace(&trace))
//!     .run()
//!     .unwrap();
//! println!("read latency: {:.1} µs/block", report.read_latency_us());
//!
//! // A labeled sweep over the same trace, fanned out across threads;
//! // results keep each job's label and config next to its report.
//! let results = Sweep::over(Workload::trace(&trace))
//!     .config("no flash", SimConfig { flash_size: ByteSize::ZERO, ..cfg.clone() })
//!     .config("with flash", cfg)
//!     .run();
//! for item in &results {
//!     let r = item.report.as_ref().unwrap();
//!     println!("{}: {:.1} µs/block", item.label, r.read_latency_us());
//! }
//! ```

pub mod arch;
pub mod config;
pub mod devsvc;
pub mod engine;
pub mod experiment;
pub mod fleet;
mod flush;
pub mod histogram;
pub mod host;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod results;
pub mod robust;
pub mod scenario;
pub mod sim;
mod spill;
pub mod telemetry;

pub use arch::Architecture;
pub use config::{FlashTiming, SimConfig};
pub use devsvc::{DeviceService, DeviceStatsSnapshot};
pub use experiment::{run_sweep, SweepJob, Workbench, WorkloadSpec};
pub use fcache_remote::{RemoteStats, RemoteStore, Router, ShardedStore};
pub use fcache_types::FleetTopology;
pub use fleet::FleetPlan;
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use metrics::{Metrics, MetricsSnapshot};
pub use policy::WritebackPolicy;
pub use report::{FleetStats, HostLoadStats, ShardServiceStats, ShardStats, SimReport};
pub use results::{
    read_rows, report_from_json, report_to_json, row_from_json, row_to_json, scan_jsonl, sink_fn,
    DecodedRow, JsonlSink, MemorySink, ResultRow, ResultSink, TeeSink, REPORT_SCHEMA,
};
pub use robust::{DegradedPolicy, FaultWindowStat, RobustnessConfig, RobustnessStats};
pub use scenario::{Scenario, Sweep, SweepError, SweepItem, SweepResults, Workload};
pub use sim::{run_source, run_trace, SimError};
pub use telemetry::{
    chrome_trace, read_span_rows, OpSpan, SpanRow, TelemetryStats, TelemetryWindow,
};
