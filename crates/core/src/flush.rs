//! Per-host asynchronous flush machinery without per-flush allocation.
//!
//! The seed spawned one boxed task per asynchronous write-through flush
//! (`policy a`), making every dirty block under that policy a heap
//! allocation in the executor's slab. This module replaces those spawns
//! with a per-host [`FlushQueue`] drained by a pool of long-lived worker
//! daemons: submitting a flush wakes an idle worker (or grows the pool to
//! the high-water mark of concurrent flushes, after which no allocation
//! ever happens again — the same convergence discipline as the host's
//! scratch-buffer pool, see `PERF.md` invariant 2).
//!
//! Timing is preserved: waking an idle worker enqueues it at the executor
//! ready-queue tail exactly where a fresh spawn would have landed, and the
//! worker then runs the identical while-dirty flush loop. Because workers
//! are daemons, a separate *keeper* task (spawned once per busy period, not
//! per flush) keeps the simulation alive until every submitted flush has
//! drained, matching the lifetime the per-flush tasks used to provide.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use fcache_cache::Medium;
use fcache_types::BlockAddr;

use crate::host::HostCtx;

/// Which tier's while-dirty loop a queued flush runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FlushTarget {
    /// RAM tier (naive/lookaside).
    Ram,
    /// Flash tier (naive).
    Flash,
    /// Unified cache; the medium selects the dedupe set.
    Unified(Medium),
}

/// One queued asynchronous flush.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlushReq {
    /// Block to flush.
    pub addr: BlockAddr,
    /// Tier to flush it from.
    pub target: FlushTarget,
}

/// Per-host flush queue state (a field of [`HostCtx`]).
pub(crate) struct FlushQueue {
    /// Pending requests, drained FIFO by the workers.
    queue: RefCell<VecDeque<FlushReq>>,
    /// Wakers of parked (idle) workers.
    idle: RefCell<Vec<Waker>>,
    /// Requests submitted but not yet fully flushed (queued + in flight).
    outstanding: Cell<usize>,
    /// Wakers of keeper tasks waiting for `outstanding == 0`.
    done_wakers: RefCell<Vec<Waker>>,
}

impl FlushQueue {
    /// Creates an empty queue with no workers.
    pub(crate) fn new() -> Self {
        Self {
            queue: RefCell::new(VecDeque::new()),
            idle: RefCell::new(Vec::new()),
            outstanding: Cell::new(0),
            done_wakers: RefCell::new(Vec::new()),
        }
    }

    /// Requests submitted but not yet fully flushed (queued + in flight) —
    /// the backlog an outage-recovery probe reads as its drain depth.
    pub(crate) fn backlog(&self) -> usize {
        self.outstanding.get()
    }

    /// Marks one request fully processed, releasing the keeper when the
    /// queue drains.
    fn complete_one(&self) {
        let left = self.outstanding.get() - 1;
        self.outstanding.set(left);
        if left == 0 {
            for w in self.done_wakers.borrow_mut().drain(..) {
                w.wake();
            }
        }
    }
}

/// Submits an asynchronous flush for `addr`, waking an idle worker or
/// growing the pool by one long-lived daemon if all workers are busy.
pub(crate) fn submit(h: &Rc<HostCtx>, req: FlushReq) {
    let q = &h.flushq;
    let was_idle = q.outstanding.get() == 0;
    q.outstanding.set(q.outstanding.get() + 1);
    q.queue.borrow_mut().push_back(req);
    if was_idle {
        // First flush of a busy period: spawn the keeper that holds the
        // simulation open until the queue drains again.
        h.sim.spawn(WaitDrained { h: Rc::clone(h) });
    }
    let idle_waker = q.idle.borrow_mut().pop();
    match idle_waker {
        Some(w) => w.wake(),
        None => {
            h.sim.spawn_daemon(flush_worker(Rc::clone(h)));
        }
    }
}

/// Long-lived flush worker: parks when the queue is empty, otherwise runs
/// the same while-dirty loop the per-flush tasks used to run.
async fn flush_worker(h: Rc<HostCtx>) {
    loop {
        let req = NextFlush { h: Rc::clone(&h) }.await;
        match req.target {
            FlushTarget::Ram => {
                while h.ram.borrow().is_dirty(req.addr) {
                    crate::engine::flush_ram_block(&h, req.addr, None).await;
                }
                h.ram_flush_pending.borrow_mut().remove(&req.addr.to_u64());
            }
            FlushTarget::Flash => {
                while h.flash.borrow().is_dirty(req.addr) {
                    crate::engine::flush_flash_block(&h, req.addr, None).await;
                }
                h.flash_flush_pending
                    .borrow_mut()
                    .remove(&req.addr.to_u64());
            }
            FlushTarget::Unified(medium) => {
                loop {
                    let dirty = h
                        .unified
                        .as_ref()
                        .expect("unified cache")
                        .borrow()
                        .is_dirty(req.addr);
                    if !dirty {
                        break;
                    }
                    crate::engine::flush_unified_block(&h, req.addr, None).await;
                }
                let pending = match medium {
                    Medium::Ram => &h.ram_flush_pending,
                    Medium::Flash => &h.flash_flush_pending,
                };
                pending.borrow_mut().remove(&req.addr.to_u64());
            }
        }
        h.flushq.complete_one();
    }
}

/// Future yielding the next queued flush; parks the worker when empty.
struct NextFlush {
    h: Rc<HostCtx>,
}

impl Future for NextFlush {
    type Output = FlushReq;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<FlushReq> {
        let q = &self.h.flushq;
        if let Some(req) = q.queue.borrow_mut().pop_front() {
            return Poll::Ready(req);
        }
        q.idle.borrow_mut().push(cx.waker().clone());
        Poll::Pending
    }
}

/// Completes once the host's flush queue is fully drained (immediately if
/// it already is). Used by the outage-recovery probes to time how long the
/// buffered-write backlog takes to clear.
pub(crate) async fn wait_drained(h: &Rc<HostCtx>) {
    WaitDrained { h: Rc::clone(h) }.await;
}

/// Keeper future: completes once every submitted flush has been processed,
/// so daemon workers with work in flight still keep [`fcache_des::Sim::run`]
/// alive (non-daemon tasks gate run completion).
struct WaitDrained {
    h: Rc<HostCtx>,
}

impl Future for WaitDrained {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let q = &self.h.flushq;
        if q.outstanding.get() == 0 {
            return Poll::Ready(());
        }
        q.done_wakers.borrow_mut().push(cx.waker().clone());
        Poll::Pending
    }
}
