//! Log-scale latency histogram.
//!
//! The paper reports averages, but a production cache simulator should
//! expose tails too: operations that miss all the way to a slow filer read
//! are two orders of magnitude slower than hits, and the mean hides them.
//! Buckets are powers of two in nanoseconds (64 buckets cover the full
//! `u64` range), so recording is O(1) with no allocation and percentile
//! queries resolve to within a factor of two.

use std::cell::Cell;

use fcache_des::SimTime;

/// Number of power-of-two buckets (covers all of `u64` nanoseconds).
pub const BUCKETS: usize = 64;

/// Append-only histogram with power-of-two nanosecond buckets.
pub struct LatencyHistogram {
    buckets: [Cell<u64>; BUCKETS],
    count: Cell<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            count: Cell::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&self, t: SimTime) {
        let ns = t.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx].set(self.buckets[idx].get() + 1);
        self.count.set(self.count.get() + 1);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.get();
        }
        HistogramSnapshot {
            buckets,
            count: self.count.get(),
        }
    }

    /// Clears all buckets (warmup reset).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.set(0);
        }
        self.count.set(0);
    }
}

/// Frozen view of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))` ns,
    /// bucket 0 additionally covers 0).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a snapshot from raw bucket counts (the serialization
    /// path). The total is derived — a live histogram's count always
    /// equals its bucket sum, so this is the exact inverse of
    /// [`HistogramSnapshot::buckets`].
    pub fn from_buckets(buckets: [u64; BUCKETS]) -> Self {
        Self {
            count: buckets.iter().sum(),
            buckets,
        }
    }

    /// Approximate percentile (`p` in 0–100): the upper bound of the
    /// bucket containing the p-th sample. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0..=100`.
    pub fn percentile(&self, p: f64) -> Option<SimTime> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(SimTime::from_nanos(upper));
            }
        }
        None
    }

    /// Convenience: p50/p95/p99 in microseconds (0.0 when empty).
    pub fn p50_p95_p99_us(&self) -> (f64, f64, f64) {
        let v = |p| self.percentile(p).map(|t| t.as_micros_f64()).unwrap_or(0.0);
        (v(50.0), v(95.0), v(99.0))
    }

    /// Returns the bucket-wise sum of two snapshots (used to aggregate
    /// per-host device histograms into one report).
    pub fn merged(&self, other: &Self) -> Self {
        let mut buckets = self.buckets;
        for (b, o) in buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        Self {
            buckets,
            count: self.count + other.count,
        }
    }

    /// Iterates non-empty buckets as `(bucket_upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (SimTime::from_nanos(upper), *c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log_buckets() {
        let h = LatencyHistogram::new();
        h.record(SimTime::from_nanos(0)); // bucket 0
        h.record(SimTime::from_nanos(1)); // bucket 0
        h.record(SimTime::from_nanos(2)); // bucket 1
        h.record(SimTime::from_nanos(1023)); // bucket 9
        h.record(SimTime::from_nanos(1024)); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        let buckets: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].1, 2);
    }

    #[test]
    fn percentile_monotone_and_bounded() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1000] {
            for _ in 0..25 {
                h.record(SimTime::from_micros(us));
            }
        }
        let s = h.snapshot();
        let p50 = s.percentile(50.0).unwrap();
        let p99 = s.percentile(99.0).unwrap();
        assert!(p50 <= p99);
        // p99 lands in the 1000 µs bucket: upper bound < 2048 µs.
        assert!(p99.as_micros_f64() >= 1000.0 && p99.as_micros_f64() < 2100.0);
        // p50 covers the 10 µs sample: bucket upper < 20 µs... (log2 buckets)
        assert!(p50.as_micros_f64() < 20.0, "p50 {p50}");
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.p50_p95_p99_us(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn reset_clears() {
        let h = LatencyHistogram::new();
        h.record(SimTime::from_micros(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn invalid_percentile_panics() {
        let h = LatencyHistogram::new();
        h.record(SimTime::from_micros(1));
        let _ = h.snapshot().percentile(150.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn percentile_bounds_contain_samples(ns in proptest::collection::vec(0u64..u64::MAX / 2, 1..200)) {
                let h = LatencyHistogram::new();
                for &x in &ns {
                    h.record(SimTime::from_nanos(x));
                }
                let s = h.snapshot();
                // p100 upper bound must be >= the maximum sample.
                let max = *ns.iter().max().unwrap();
                let p100 = s.percentile(100.0).unwrap();
                prop_assert!(p100.as_nanos() >= max);
                // Percentiles are monotone.
                let mut prev = SimTime::ZERO;
                for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                    let v = s.percentile(p).unwrap();
                    prop_assert!(v >= prev);
                    prev = v;
                }
            }
        }

        /// Arbitrary snapshots for the merge laws. Counts stay well under
        /// `u64::MAX / 4` so three-way merges cannot overflow a bucket.
        fn snapshot_strategy() -> impl Strategy<Value = HistogramSnapshot> {
            proptest::collection::vec((0usize..BUCKETS, 0u64..1 << 40), 0..32).prop_map(|pairs| {
                let mut buckets = [0u64; BUCKETS];
                for (i, c) in pairs {
                    buckets[i] += c;
                }
                HistogramSnapshot::from_buckets(buckets)
            })
        }

        // `merged` must behave as summing sample populations: the fleet
        // report folds per-host (and per-row) histograms pairwise in
        // whatever order cells complete, so the fold has to be
        // order-insensitive and lossless.
        proptest! {
            #[test]
            fn merged_is_commutative_and_associative(
                a in snapshot_strategy(),
                b in snapshot_strategy(),
                c in snapshot_strategy(),
            ) {
                prop_assert_eq!(a.merged(&b), b.merged(&a));
                prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
            }

            #[test]
            fn merged_empty_is_identity(a in snapshot_strategy()) {
                let empty = HistogramSnapshot::default();
                prop_assert_eq!(a.merged(&empty), a);
                prop_assert_eq!(empty.merged(&a), a);
            }

            #[test]
            fn merged_conserves_counts(a in snapshot_strategy(), b in snapshot_strategy()) {
                let m = a.merged(&b);
                prop_assert_eq!(m.count(), a.count() + b.count());
                for i in 0..BUCKETS {
                    prop_assert_eq!(m.buckets()[i], a.buckets()[i] + b.buckets()[i]);
                }
            }
        }
    }
}
