//! Device timing service: queue-aware SSD latency in the simulation hot
//! path.
//!
//! The paper's §6.2 validation shows real client SSDs have fill-, wear-,
//! and locality-dependent latency, but the engine historically charged a
//! flat [`fcache_device::FlashModel`] latency per flash op, leaving the
//! behavioral [`SsdModel`] to an offline replay bench. [`DeviceService`]
//! closes that gap: every flash read and write in the engine routes through
//! one per-host service that either
//!
//! - charges the **flat** Table 1 latency exactly as before (the default —
//!   bit-identical reports, zero added cost), or
//! - services the op against a **queue-aware SSD**: a bounded NCQ-style
//!   service queue ([`fcache_des::Resource`] with `queue_depth` slots,
//!   strict FIFO) in front of the behavioral [`SsdModel`] (FTL map-cache
//!   locality, fill penalty, wear penalty, short-term noise). Ops submit,
//!   wait for a free slot when the device is saturated, then complete
//!   after their drawn service time.
//!
//! The selector is [`crate::SimConfig::flash_timing`]. In SSD mode the
//! service also keeps device-level statistics (read/write latency
//! histograms, queue-depth occupancy) and, when
//! [`crate::SimConfig::device_window`] is nonzero, per-window latency
//! averages — the data behind Figure 1, now produced by an in-engine run
//! instead of an offline log replay.
//!
//! Determinism: each host owns one device whose RNG seed derives from
//! `(ssd seed, run seed, host id)` ([`fcache_device::SsdConfig::for_host`]), service
//! times are drawn in FIFO grant order inside a deterministic DES, and the
//! queue is strict FIFO — the same configuration and trace always produce
//! the same device timings (asserted by `tests/sweep_determinism.rs`).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fcache_des::{CompletionSet, Resource, Sim, SimTime};
use fcache_device::{IoDirection, IoLog, SsdModel, WindowStat};
use fcache_types::{BlockAddr, FaultEffect, FaultSchedule, HostId, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{FlashTiming, SimConfig};
use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::robust::RobustnessState;
use crate::telemetry::{enter, OpSpan};

/// Per-host flash device timing service. Owned by each
/// [`crate::host`]`::HostCtx`; the engine performs no flash sleep outside
/// of it.
pub struct DeviceService {
    sim: Sim,
    /// Shared flash I/O log (same handle as the host's; appends are no-ops
    /// when logging is disabled).
    iolog: IoLog,
    /// Flat read latency (effective, from the `FlashModel`).
    flat_read: SimTime,
    /// Flat write latency (effective: includes the §7.8 persistence
    /// doubling).
    flat_write: SimTime,
    /// Whether the cache keeps recoverable on-flash metadata (§7.8). In
    /// SSD mode a persistent write services two device writes per block —
    /// "one of the data and one for the meta-data".
    persistent: bool,
    /// LBA space of the backing flash tier (for the address hash).
    lba_space: u64,
    /// Queue-aware SSD state; `None` in flat mode.
    ssd: Option<SsdQueue>,
    /// Fault-injection state; `None` — the default — keeps every dispatch
    /// path byte-identical to the pre-fault service.
    faults: Option<DevFaults>,
}

/// Device-target fault state (see `fcache_types::fault`).
struct DevFaults {
    /// Resolved schedule for [`fcache_types::FaultTarget::Device`].
    sched: FaultSchedule,
    /// Error-rate draw stream (per host, seeded from the run seed).
    rng: RefCell<SmallRng>,
    /// Shared robustness counters (queued/retried dispatches).
    state: Rc<RobustnessState>,
    /// Pause before re-probing after a transient device error.
    retry: SimTime,
}

/// The NCQ-style service queue plus the behavioral model behind it.
struct SsdQueue {
    /// Bounded service slots: up to `depth` commands in service at once,
    /// FIFO admission beyond that.
    slots: Resource,
    depth: usize,
    model: RefCell<SsdModel>,
    stats: DeviceStats,
    /// Window size for Figure-1-style per-window averages (0 = off).
    window: usize,
    windows: RefCell<Vec<WindowStat>>,
    acc: RefCell<WindowAcc>,
}

/// Running accumulator for the current latency window.
#[derive(Default)]
struct WindowAcc {
    start_io: u64,
    ios: u64,
    read_ns: u64,
    reads: u64,
    write_ns: u64,
    writes: u64,
}

impl WindowAcc {
    fn flush(&mut self) -> WindowStat {
        let stat = WindowStat {
            start_io: self.start_io,
            read_avg_us: if self.reads > 0 {
                self.read_ns as f64 / self.reads as f64 / 1000.0
            } else {
                0.0
            },
            write_avg_us: if self.writes > 0 {
                self.write_ns as f64 / self.writes as f64 / 1000.0
            } else {
                0.0
            },
            reads: self.reads,
            writes: self.writes,
        };
        let next_start = self.start_io + self.ios;
        *self = WindowAcc {
            start_io: next_start,
            ..WindowAcc::default()
        };
        stat
    }
}

/// Device-level counters (SSD mode only; flat mode records nothing so the
/// default path stays zero-cost).
#[derive(Default)]
struct DeviceStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    read_time: Cell<u64>,  // ns
    write_time: Cell<u64>, // ns
    queue_waits: Cell<u64>,
    depth_sum: Cell<u64>,
    depth_samples: Cell<u64>,
    depth_max: Cell<u64>,
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
}

impl DeviceStats {
    /// Records queue occupancy observed by one submission (before it
    /// enters), and whether it had to wait for a slot.
    fn note_submit(&self, inflight: u64, waited: bool) {
        self.depth_sum.set(self.depth_sum.get() + inflight);
        self.depth_samples.set(self.depth_samples.get() + 1);
        self.depth_max.set(self.depth_max.get().max(inflight));
        if waited {
            self.queue_waits.set(self.queue_waits.get() + 1);
        }
    }

    fn note_complete(&self, dir: IoDirection, t: SimTime) {
        match dir {
            IoDirection::Read => {
                self.reads.set(self.reads.get() + 1);
                self.read_time.set(self.read_time.get() + t.as_nanos());
                self.read_hist.record(t);
            }
            IoDirection::Write => {
                self.writes.set(self.writes.get() + 1);
                self.write_time.set(self.write_time.get() + t.as_nanos());
                self.write_hist.record(t);
            }
        }
    }

    fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.read_time.set(0);
        self.write_time.set(0);
        self.queue_waits.set(0);
        self.depth_sum.set(0);
        self.depth_samples.set(0);
        self.depth_max.set(0);
        self.read_hist.reset();
        self.write_hist.reset();
    }

    fn snapshot(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            reads: self.reads.get(),
            writes: self.writes.get(),
            read_time: SimTime::from_nanos(self.read_time.get()),
            write_time: SimTime::from_nanos(self.write_time.get()),
            queue_waits: self.queue_waits.get(),
            depth_sum: self.depth_sum.get(),
            depth_samples: self.depth_samples.get(),
            depth_max: self.depth_max.get(),
            read_hist: self.read_hist.snapshot(),
            write_hist: self.write_hist.snapshot(),
        }
    }
}

/// Frozen device-service counters (all zero in flat mode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStatsSnapshot {
    /// Device reads serviced.
    pub reads: u64,
    /// Device writes serviced.
    pub writes: u64,
    /// Sum of read service times.
    pub read_time: SimTime,
    /// Sum of write service times.
    pub write_time: SimTime,
    /// Submissions that found every service slot busy and had to queue.
    pub queue_waits: u64,
    /// Sum of the queue occupancy (in-service + waiting) each submission
    /// observed.
    pub depth_sum: u64,
    /// Submissions sampled for occupancy.
    pub depth_samples: u64,
    /// Peak queue occupancy observed by any submission.
    pub depth_max: u64,
    /// Per-read device service-time distribution.
    pub read_hist: HistogramSnapshot,
    /// Per-write device service-time distribution.
    pub write_hist: HistogramSnapshot,
}

impl DeviceStatsSnapshot {
    /// Total device ops serviced.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean device read service time in microseconds (0 when no reads).
    pub fn read_avg_us(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_time.as_nanos() as f64 / self.reads as f64 / 1000.0
        }
    }

    /// Mean device write service time in microseconds (0 when no writes).
    pub fn write_avg_us(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_time.as_nanos() as f64 / self.writes as f64 / 1000.0
        }
    }

    /// Mean queue occupancy observed at submission (0 when unsampled).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }
}

impl std::ops::AddAssign for DeviceStatsSnapshot {
    fn add_assign(&mut self, rhs: Self) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.read_time += rhs.read_time;
        self.write_time += rhs.write_time;
        self.queue_waits += rhs.queue_waits;
        self.depth_sum += rhs.depth_sum;
        self.depth_samples += rhs.depth_samples;
        self.depth_max = self.depth_max.max(rhs.depth_max);
        // Histograms merge bucket-wise through their snapshots.
        self.read_hist = self.read_hist.merged(&rhs.read_hist);
        self.write_hist = self.write_hist.merged(&rhs.write_hist);
    }
}

impl DeviceService {
    /// Builds the service for one host from the run configuration. The SSD
    /// variant resolves the auto-capacity sentinel against the host's flash
    /// tier and derives the per-host device seed; flat mode stores the two
    /// effective `FlashModel` latencies and nothing else.
    pub fn new(sim: Sim, cfg: &SimConfig, host: HostId, iolog: IoLog) -> Self {
        let ssd = match &cfg.flash_timing {
            FlashTiming::Flat => None,
            FlashTiming::Ssd(sc) => {
                let mut sc = sc.clone();
                if sc.capacity_blocks == 0 {
                    sc = sc.fit_capacity(cfg.flash_blocks() as u64);
                }
                let sc = sc.for_host(cfg.seed, host.0);
                let depth = sc.queue_depth.max(1);
                Some(SsdQueue {
                    slots: Resource::new(depth),
                    depth,
                    model: RefCell::new(SsdModel::new(sc)),
                    stats: DeviceStats::default(),
                    window: cfg.device_window,
                    windows: RefCell::new(Vec::new()),
                    acc: RefCell::new(WindowAcc::default()),
                })
            }
        };
        Self {
            sim,
            iolog,
            flat_read: cfg.flash_model.read_latency(),
            flat_write: cfg.flash_model.write_latency(),
            persistent: cfg.flash_model.persistent,
            lba_space: cfg.flash_blocks().max(1) as u64,
            ssd,
            faults: None,
        }
    }

    /// Attaches a device fault schedule (builder style; used only when the
    /// run has a non-empty fault plan). `retry` is the already-scaled pause
    /// between dispatch attempts after a transient device error.
    pub(crate) fn with_faults(
        mut self,
        sched: FaultSchedule,
        seed: u64,
        state: Rc<RobustnessState>,
        retry: SimTime,
    ) -> Self {
        self.faults = Some(DevFaults {
            sched,
            rng: RefCell::new(SmallRng::seed_from_u64(seed)),
            state,
            retry,
        });
        self
    }

    /// Admits one dispatch through the device fault schedule, returning the
    /// service-time multiplier in force (1.0 when fault-free). Outages park
    /// the dispatch until the window closes; transient errors pause and
    /// re-probe (a cache device retries internally — the op never fails up
    /// the stack, it just takes longer).
    async fn fault_admit(&self, sp: Option<&OpSpan>) -> f64 {
        let Some(f) = &self.faults else {
            return 1.0;
        };
        loop {
            let eff = {
                let mut rng = f.rng.borrow_mut();
                f.sched.effect_at(self.sim.now().as_nanos(), &mut || {
                    rng.gen_range(0.0f64..1.0)
                })
            };
            match eff {
                FaultEffect::None => return 1.0,
                FaultEffect::SlowBy(x) => return x,
                FaultEffect::Fail {
                    until_ns: Some(end),
                    ..
                } => {
                    RobustnessState::bump(&f.state.queued_ops);
                    let wait = SimTime::from_nanos(end).saturating_sub(self.sim.now());
                    enter(sp, &self.sim, Phase::DegradedPark);
                    self.sim.sleep(wait.max(SimTime::from_nanos(1))).await;
                }
                FaultEffect::Fail { until_ns: None, .. } => {
                    RobustnessState::bump(&f.state.retries);
                    if let Some(s) = sp {
                        s.note_retry();
                    }
                    enter(sp, &self.sim, Phase::RetryBackoff);
                    self.sim.sleep(f.retry).await;
                }
            }
        }
    }

    /// Applies a fault multiplier without perturbing the fault-free path
    /// (scaling by exactly 1.0 must not round through `f64`).
    fn inflate(t: SimTime, m: f64) -> SimTime {
        if m == 1.0 {
            t
        } else {
            t.scale(m)
        }
    }

    /// True when the queue-aware SSD services ops (i.e. `flash_timing` is
    /// [`FlashTiming::Ssd`]).
    pub fn is_queued(&self) -> bool {
        self.ssd.is_some()
    }

    /// Maps a file block address onto the device's LBA space (the
    /// simulator does not model flash layout; a stable hash preserves the
    /// locality structure the SSD model cares about).
    pub fn lba(&self, addr: BlockAddr) -> u64 {
        (addr.to_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16) % self.lba_space
    }

    /// Flat-mode fast path for read hits whose latency the caller
    /// accumulates into one combined sleep (the unified lookup loop):
    /// returns `Some(latency)` after logging the access, or `None` in SSD
    /// mode, where the caller must collect the block and [`Self::read`]
    /// it through the queue after the loop.
    pub fn try_flat_read(&self, addr: BlockAddr) -> Option<SimTime> {
        if self.ssd.is_some() || self.faults.is_some() {
            // Fault handling may need to park the dispatch, which cannot
            // happen under the caller's cache borrow — route through
            // [`Self::read`] like an SSD-mode hit.
            return None;
        }
        self.iolog.log_read(self.lba(addr));
        Some(self.flat_read)
    }

    /// Services one block read (flash-tier hit in the unified cache, or a
    /// writeback's read off the device).
    pub async fn read(&self, addr: BlockAddr, sp: Option<&OpSpan>) {
        let lba = self.lba(addr);
        self.iolog.log_read(lba);
        let m = if self.faults.is_none() {
            1.0
        } else {
            self.fault_admit(sp).await
        };
        match &self.ssd {
            None => {
                enter(sp, &self.sim, Phase::DeviceService);
                self.sim.sleep(Self::inflate(self.flat_read, m)).await;
            }
            Some(q) => {
                q.service(&self.sim, IoDirection::Read, lba, m, sp).await;
            }
        }
    }

    /// Services a batch of block reads issued by one operation (the
    /// layered read path's flash hits). Flat mode charges one combined
    /// sleep of `n × read latency` — exactly the pre-service engine
    /// behavior. SSD mode submits one command per *distinct* LBA into the
    /// bounded NCQ at once and completes when the last command finishes:
    /// the batch overlaps across the queue's service slots instead of
    /// paying `n × serial service`.
    pub async fn read_batch(&self, addrs: &[BlockAddr], sp: Option<&OpSpan>) {
        if addrs.is_empty() {
            return;
        }
        // One batch is one request stream: admit it through the fault
        // schedule once, like one command at the device interface.
        let m = if self.faults.is_none() {
            1.0
        } else {
            self.fault_admit(sp).await
        };
        match &self.ssd {
            None => {
                for &a in addrs {
                    self.iolog.log_read(self.lba(a));
                }
                enter(sp, &self.sim, Phase::DeviceService);
                self.sim
                    .sleep(Self::inflate(self.flat_read.times(addrs.len() as u64), m))
                    .await;
            }
            Some(q) => {
                // One device command per distinct LBA, first-occurrence
                // order (repeats inside one op would hit the device's
                // internal cache, and the iolog records each LBA once).
                let mut lbas: Vec<u64> = Vec::with_capacity(addrs.len());
                for &a in addrs {
                    let lba = self.lba(a);
                    if !lbas.contains(&lba) {
                        lbas.push(lba);
                    }
                }
                for &lba in &lbas {
                    self.iolog.log_read(lba);
                }
                q.service_batch(&self.sim, IoDirection::Read, &lbas, m, sp)
                    .await;
            }
        }
    }

    /// Services one block write (any flash landing). Flat mode preserves
    /// the pre-service order (sleep, then log); SSD mode submits to the
    /// queue. When the cache keeps persistent metadata (§7.8), the block
    /// is a two-command batch — "one of the data and one for the
    /// meta-data" — overlapped across the NCQ like any other batch.
    pub async fn write(&self, addr: BlockAddr, sp: Option<&OpSpan>) {
        let lba = self.lba(addr);
        let m = if self.faults.is_none() {
            1.0
        } else {
            self.fault_admit(sp).await
        };
        match &self.ssd {
            None => {
                enter(sp, &self.sim, Phase::DeviceService);
                self.sim.sleep(Self::inflate(self.flat_write, m)).await;
                self.iolog.log_write(lba);
            }
            Some(q) => {
                self.iolog.log_write(lba);
                if self.persistent {
                    q.service_batch(&self.sim, IoDirection::Write, &[lba, lba], m, sp)
                        .await;
                } else {
                    q.service(&self.sim, IoDirection::Write, lba, m, sp).await;
                }
            }
        }
    }

    /// Current device queue occupancy (in service + waiting); 0 in flat
    /// mode, where there is no queue. The telemetry window's queue-depth
    /// sample.
    pub fn queue_depth(&self) -> u64 {
        self.ssd.as_ref().map_or(0, SsdQueue::inflight)
    }

    /// Frozen counters (all zero in flat mode).
    pub fn stats(&self) -> DeviceStatsSnapshot {
        self.ssd
            .as_ref()
            .map(|q| q.stats.snapshot())
            .unwrap_or_default()
    }

    /// Zeroes the service counters (warmup reset). Device *physical* state
    /// — fill, wear, map cache — carries across the reset, as does the
    /// window series: device conditioning is the point of measuring it.
    pub fn reset_stats(&self) {
        if let Some(q) = &self.ssd {
            q.stats.reset();
        }
    }

    /// Drains the per-window latency averages accumulated so far
    /// (including a partial final window). `None` unless SSD mode with a
    /// nonzero [`crate::SimConfig::device_window`].
    pub fn take_windows(&self) -> Option<Vec<WindowStat>> {
        let q = self.ssd.as_ref().filter(|q| q.window > 0)?;
        let mut out = std::mem::take(&mut *q.windows.borrow_mut());
        let mut acc = q.acc.borrow_mut();
        if acc.ios > 0 {
            out.push(acc.flush());
        }
        Some(out)
    }
}

impl SsdQueue {
    /// Current queue occupancy: commands in service plus commands waiting.
    fn inflight(&self) -> u64 {
        (self.depth - self.slots.available()) as u64 + self.slots.queue_len() as u64
    }

    /// Submits one command: records occupancy, waits FIFO for a service
    /// slot, draws the service time from the behavioral model (in grant
    /// order, so draws are deterministic), and holds the slot for exactly
    /// that long.
    async fn service(
        &self,
        sim: &Sim,
        dir: IoDirection,
        lba: u64,
        scale: f64,
        sp: Option<&OpSpan>,
    ) {
        let waited = self.slots.available() == 0 || self.slots.queue_len() > 0;
        self.stats.note_submit(self.inflight(), waited);
        enter(sp, sim, Phase::FlashQueue);
        let _slot = self.slots.acquire().await;
        let t = {
            let mut m = self.model.borrow_mut();
            match dir {
                IoDirection::Read => m.read(lba),
                IoDirection::Write => m.write(lba),
            }
        };
        let t = DeviceService::inflate(t, scale);
        self.stats.note_complete(dir, t);
        self.window_record(dir, t);
        enter(sp, sim, Phase::DeviceService);
        sim.sleep(t).await;
    }

    /// Submits every command of one op's batch into the NCQ at once and
    /// completes when the *last* command finishes — intra-op NCQ
    /// parallelism instead of `n × serial service`.
    ///
    /// A batch of one is serviced through [`Self::service`] verbatim, so
    /// it stays bit-identical to a single [`DeviceService::read`]. Larger
    /// batches submit through a [`CompletionSet`]: sub-commands are polled
    /// in submission order, the NCQ [`Resource`] grants FIFO, so model
    /// draws still happen in submission order and stay deterministic.
    /// Per-command stats are exact — each command records its own
    /// occupancy-at-submit, wait flag, service draw, histogram entry, and
    /// window sample, exactly as many as serial submission would.
    ///
    /// Span attribution: the op is in `FlashQueue` from batch submission
    /// until its last command is admitted and drawn, then `DeviceService`
    /// until the last completion.
    async fn service_batch(
        &self,
        sim: &Sim,
        dir: IoDirection,
        lbas: &[u64],
        scale: f64,
        sp: Option<&OpSpan>,
    ) {
        match lbas {
            [] => {}
            [lba] => self.service(sim, dir, *lba, scale, sp).await,
            _ => {
                let admitted = Cell::new(0usize);
                let n = lbas.len();
                enter(sp, sim, Phase::FlashQueue);
                let mut batch = CompletionSet::new();
                for &lba in lbas {
                    let admitted = &admitted;
                    batch.submit(async move {
                        let waited = self.slots.available() == 0 || self.slots.queue_len() > 0;
                        self.stats.note_submit(self.inflight(), waited);
                        let _slot = self.slots.acquire().await;
                        let t = {
                            let mut m = self.model.borrow_mut();
                            match dir {
                                IoDirection::Read => m.read(lba),
                                IoDirection::Write => m.write(lba),
                            }
                        };
                        let t = DeviceService::inflate(t, scale);
                        self.stats.note_complete(dir, t);
                        self.window_record(dir, t);
                        admitted.set(admitted.get() + 1);
                        if admitted.get() == n {
                            // The whole batch is in service; the op's
                            // remaining wait is pure device time.
                            enter(sp, sim, Phase::DeviceService);
                        }
                        sim.sleep(t).await;
                    });
                }
                batch.wait_all().await;
            }
        }
    }

    fn window_record(&self, dir: IoDirection, t: SimTime) {
        if self.window == 0 {
            return;
        }
        let mut acc = self.acc.borrow_mut();
        match dir {
            IoDirection::Read => {
                acc.reads += 1;
                acc.read_ns += t.as_nanos();
            }
            IoDirection::Write => {
                acc.writes += 1;
                acc.write_ns += t.as_nanos();
            }
        }
        acc.ios += 1;
        if acc.ios as usize >= self.window {
            let stat = acc.flush();
            drop(acc);
            self.windows.borrow_mut().push(stat);
        }
    }
}

impl std::fmt::Debug for DeviceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("DeviceService");
        d.field("mode", if self.is_queued() { &"ssd" } else { &"flat" });
        if let Some(q) = &self.ssd {
            d.field("depth", &q.depth)
                .field("model", &*q.model.borrow());
        }
        d.finish()
    }
}
