//! Bounded-memory per-slot queues for chunk-fed streamed replay.
//!
//! [`crate::run_source`]'s chunk feed fans ops into one queue per
//! `(host, thread)` slot. With a plain `VecDeque` per slot, replay memory
//! is O(chunk + inter-thread skew) — and the skew term is unbounded: a
//! trace whose final thread's ops all sit at the end of the archive makes
//! every earlier queue buffer the whole stream. [`SpillQueue`] caps the
//! resident term unconditionally: the first [`SPILL_RESIDENT_OPS`] ops of
//! a slot's backlog stay in memory, and anything past that spills to an
//! unlinked temporary file in compact 20-byte records, read back in order
//! as the slot drains.
//!
//! The spill is strictly an overflow valve — a slot that never exceeds the
//! cap never touches the filesystem — and it degrades gracefully: if the
//! temp file cannot be created or written, the overflow simply stays
//! resident (the pre-cap behavior) rather than failing the run. A *read*
//! failure is not recoverable (the ops exist nowhere else) and surfaces as
//! a source error.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use fcache_types::{FileId, HostId, OpKind, ThreadId, TraceOp, TRACE_CHUNK_OPS};

/// Per-slot resident cap in ops. Two source chunks: enough that the
/// steady-state round-robin skew of a well-interleaved trace never
/// spills, small enough that total replay memory stays O(chunk) per slot
/// no matter how lopsided the trace is.
pub(crate) const SPILL_RESIDENT_OPS: usize = 2 * TRACE_CHUNK_OPS;

/// Encoded spill record size (same 20-byte shape as the `FCTRACE1` wire
/// records, so spilled backlog costs 20 bytes/op on disk, not 16 bytes
/// resident).
const REC: usize = 20;

/// Ops moved from the spill back into the resident window per refill.
const REFILL_OPS: usize = TRACE_CHUNK_OPS;

/// Flush the encode buffer to disk once it holds a chunk's worth.
const FLUSH_BYTES: usize = TRACE_CHUNK_OPS * REC;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// FIFO op queue whose resident size is capped at roughly
/// [`SPILL_RESIDENT_OPS`]; overflow lives in an unlinked temp file.
pub(crate) struct SpillQueue {
    front: VecDeque<TraceOp>,
    spill: Option<Spill>,
    /// Temp-file creation failed once; keep overflow resident instead.
    degraded: bool,
    /// Ops ever routed through the spill (diagnostics and tests).
    spilled: u64,
}

impl SpillQueue {
    pub(crate) fn new() -> Self {
        Self {
            front: VecDeque::new(),
            spill: None,
            degraded: false,
            spilled: 0,
        }
    }

    /// Appends an op, spilling past the resident cap. Infallible: spill
    /// I/O trouble falls back to resident buffering.
    pub(crate) fn push(&mut self, op: TraceOp) {
        let spill_backlog = self.spill.as_ref().map_or(0, Spill::pending_records);
        // Ops may only join the resident window while the spill is empty,
        // otherwise they would overtake the spilled backlog.
        if spill_backlog == 0 && self.front.len() < SPILL_RESIDENT_OPS {
            self.front.push_back(op);
            return;
        }
        if self.degraded {
            self.front.push_back(op);
            return;
        }
        if self.spill.is_none() {
            match Spill::create() {
                Ok(s) => self.spill = Some(s),
                Err(_) => {
                    self.degraded = true;
                    self.front.push_back(op);
                    return;
                }
            }
        }
        self.spill.as_mut().expect("just ensured").push(op);
        self.spilled += 1;
    }

    /// Pops the next op in arrival order, pulling spilled backlog back
    /// into the resident window as needed. Errs only when spilled records
    /// cannot be read back (they exist nowhere else).
    pub(crate) fn pop(&mut self) -> io::Result<Option<TraceOp>> {
        if let Some(op) = self.front.pop_front() {
            return Ok(Some(op));
        }
        if let Some(s) = &mut self.spill {
            s.refill(&mut self.front)?;
        }
        Ok(self.front.pop_front())
    }

    /// Ops ever routed through the spill file.
    #[cfg(test)]
    pub(crate) fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Resident ops right now.
    #[cfg(test)]
    pub(crate) fn resident(&self) -> usize {
        self.front.len()
    }
}

/// The overflow tail: `file[read_pos..write_pos]` followed by the not yet
/// flushed `buf[buf_read..]`, both in arrival order.
struct Spill {
    file: File,
    read_pos: u64,
    write_pos: u64,
    buf: Vec<u8>,
    buf_read: usize,
    /// A flush failed; stop writing and keep the tail in `buf`.
    write_broken: bool,
}

impl Spill {
    /// Creates the backing temp file and unlinks it immediately, so the
    /// backlog can never outlive the process.
    fn create() -> io::Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("fcache_spill_{}_{seq}.tmp", std::process::id()));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Best-effort unlink: on platforms that refuse to remove an open
        // file the queue still works, it just leaves the file behind on a
        // crash.
        let _ = std::fs::remove_file(&path);
        Ok(Self {
            file,
            read_pos: 0,
            write_pos: 0,
            buf: Vec::new(),
            buf_read: 0,
            write_broken: false,
        })
    }

    fn pending_records(&self) -> usize {
        ((self.write_pos - self.read_pos) as usize + (self.buf.len() - self.buf_read)) / REC
    }

    fn push(&mut self, op: TraceOp) {
        encode_rec(&op, &mut self.buf);
        if !self.write_broken && self.buf.len() - self.buf_read >= FLUSH_BYTES {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let pending = &self.buf[self.buf_read..];
        let ok = self
            .file
            .seek(SeekFrom::Start(self.write_pos))
            .and_then(|_| self.file.write_all(pending))
            .is_ok();
        if ok {
            self.write_pos += pending.len() as u64;
            self.buf.clear();
            self.buf_read = 0;
        } else {
            // Keep the records resident; the queue degrades to unbounded
            // memory rather than losing ops.
            self.write_broken = true;
        }
    }

    /// Moves up to [`REFILL_OPS`] backlog ops into `front`, disk region
    /// first, then the unflushed buffer.
    fn refill(&mut self, front: &mut VecDeque<TraceOp>) -> io::Result<()> {
        let disk_recs = ((self.write_pos - self.read_pos) as usize) / REC;
        if disk_recs > 0 {
            let n = disk_recs.min(REFILL_OPS);
            let mut scratch = vec![0u8; n * REC];
            self.file.seek(SeekFrom::Start(self.read_pos))?;
            self.file.read_exact(&mut scratch)?;
            for rec in scratch.chunks_exact(REC) {
                front.push_back(decode_rec(rec.try_into().expect("chunked by REC")));
            }
            self.read_pos += (n * REC) as u64;
            return Ok(());
        }
        let buf_recs = (self.buf.len() - self.buf_read) / REC;
        let n = buf_recs.min(REFILL_OPS);
        for rec in self.buf[self.buf_read..self.buf_read + n * REC].chunks_exact(REC) {
            front.push_back(decode_rec(rec.try_into().expect("chunked by REC")));
        }
        self.buf_read += n * REC;
        if self.buf_read == self.buf.len() {
            self.buf.clear();
            self.buf_read = 0;
        }
        Ok(())
    }
}

/// Spill record codec: same field layout as the `FCTRACE1` wire records.
/// Private to the spill file, which never outlives the process, so the
/// layout owes compatibility to nothing.
fn encode_rec(op: &TraceOp, out: &mut Vec<u8>) {
    out.extend_from_slice(&op.host().0.to_le_bytes());
    out.extend_from_slice(&op.thread().0.to_le_bytes());
    out.extend_from_slice(&[
        u8::from(op.is_write()) | (u8::from(op.warmup()) << 1),
        0,
        0,
        0,
    ]);
    out.extend_from_slice(&op.file().0.to_le_bytes());
    out.extend_from_slice(&op.start_block().to_le_bytes());
    out.extend_from_slice(&op.nblocks().to_le_bytes());
}

fn decode_rec(rec: &[u8; REC]) -> TraceOp {
    TraceOp::new(
        HostId(u16::from_le_bytes([rec[0], rec[1]])),
        ThreadId(u16::from_le_bytes([rec[2], rec[3]])),
        if rec[4] & 1 != 0 {
            OpKind::Write
        } else {
            OpKind::Read
        },
        FileId(u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]])),
        u32::from_le_bytes([rec[12], rec[13], rec[14], rec[15]]),
        u32::from_le_bytes([rec[16], rec[17], rec[18], rec[19]]),
        rec[4] & 2 != 0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u32) -> TraceOp {
        TraceOp::new(
            HostId((i % 3) as u16),
            ThreadId((i % 5) as u16),
            if i.is_multiple_of(2) {
                OpKind::Read
            } else {
                OpKind::Write
            },
            FileId(i / 7),
            i.wrapping_mul(13),
            1 + i % TraceOp::MAX_NBLOCKS.min(64),
            i.is_multiple_of(11),
        )
    }

    #[test]
    fn under_the_cap_stays_resident() {
        let mut q = SpillQueue::new();
        for i in 0..SPILL_RESIDENT_OPS as u32 {
            q.push(op(i));
        }
        assert_eq!(q.spilled(), 0);
        for i in 0..SPILL_RESIDENT_OPS as u32 {
            assert_eq!(q.pop().unwrap(), Some(op(i)));
        }
        assert_eq!(q.pop().unwrap(), None);
    }

    #[test]
    fn overflow_spills_and_drains_in_order() {
        let total = 5 * SPILL_RESIDENT_OPS as u32;
        let mut q = SpillQueue::new();
        for i in 0..total {
            q.push(op(i));
        }
        assert!(q.spilled() > 0, "backlog past the cap must spill");
        assert!(
            q.resident() <= SPILL_RESIDENT_OPS,
            "resident window exceeded the cap: {}",
            q.resident()
        );
        for i in 0..total {
            assert_eq!(q.pop().unwrap(), Some(op(i)), "op {i} out of order");
        }
        assert_eq!(q.pop().unwrap(), None);
    }

    #[test]
    fn interleaved_bursts_preserve_fifo_order() {
        let mut q = SpillQueue::new();
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        // Alternate skewed bursts: fill 3x the cap, drain half, repeat.
        for round in 0..4 {
            let burst = (round + 3) * SPILL_RESIDENT_OPS as u32;
            for _ in 0..burst {
                q.push(op(next_push));
                next_push += 1;
            }
            for _ in 0..burst / 2 {
                assert_eq!(q.pop().unwrap(), Some(op(next_pop)));
                next_pop += 1;
            }
        }
        while next_pop < next_push {
            assert_eq!(q.pop().unwrap(), Some(op(next_pop)));
            next_pop += 1;
        }
        assert_eq!(q.pop().unwrap(), None);
        assert!(q.spilled() > 0);
    }

    #[test]
    fn spill_record_codec_roundtrips() {
        let mut buf = Vec::new();
        for i in 0..1000 {
            buf.clear();
            let o = op(i);
            encode_rec(&o, &mut buf);
            assert_eq!(buf.len(), REC);
            assert_eq!(decode_rec(buf.as_slice().try_into().unwrap()), o);
        }
    }
}
