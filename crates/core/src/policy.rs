//! Writeback policies.
//!
//! §3.5 of the paper, applied independently to the RAM and flash tiers
//! (§3.6), giving 7 × 7 = 49 combinations per architecture:
//!
//! - **write-through** (`s`) — "data is immediately written to the server,
//!   blocking the requester until completion."
//! - **asynchronous write-through** (`a`) — "data is immediately written to
//!   the server without blocking the requester."
//! - **periodic** (`p1`, `p5`, `p15`, `p30`) — "dirty data remains in the
//!   cache until a syncer thread flushes the data back to the server."
//! - **none** (`n`) — "dirty data remains in the cache until evicted for
//!   capacity reasons."

use core::fmt;
use std::str::FromStr;

use fcache_des::SimTime;

/// When dirty blocks move from a cache tier to the next level down.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WritebackPolicy {
    /// Synchronous write-through (`s`).
    WriteThrough,
    /// Asynchronous write-through (`a`).
    AsyncWriteThrough,
    /// Periodic syncer with the given period in seconds (`pN`).
    Periodic(u32),
    /// No writeback except capacity eviction (`n`).
    None,
}

impl WritebackPolicy {
    /// The paper's seven policies in presentation order
    /// (`s a p1 p5 p15 p30 n`, the axes of Figure 2).
    pub const ALL: [WritebackPolicy; 7] = [
        WritebackPolicy::WriteThrough,
        WritebackPolicy::AsyncWriteThrough,
        WritebackPolicy::Periodic(1),
        WritebackPolicy::Periodic(5),
        WritebackPolicy::Periodic(15),
        WritebackPolicy::Periodic(30),
        WritebackPolicy::None,
    ];

    /// Short label as used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            WritebackPolicy::WriteThrough => "s".into(),
            WritebackPolicy::AsyncWriteThrough => "a".into(),
            WritebackPolicy::Periodic(s) => format!("p{s}"),
            WritebackPolicy::None => "n".into(),
        }
    }

    /// Syncer period, if this is a periodic policy.
    pub fn period(&self) -> Option<SimTime> {
        match self {
            WritebackPolicy::Periodic(s) => Some(SimTime::from_secs(u64::from(*s))),
            _ => None,
        }
    }

    /// True if a write into the tier must block until the flush completes.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, WritebackPolicy::WriteThrough)
    }
}

impl fmt::Display for WritebackPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error parsing a policy label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError(pub String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown writeback policy {:?} (expected s, a, pN, or n)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for WritebackPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "s" => Ok(WritebackPolicy::WriteThrough),
            "a" => Ok(WritebackPolicy::AsyncWriteThrough),
            "n" => Ok(WritebackPolicy::None),
            _ => {
                if let Some(num) = s.strip_prefix('p') {
                    if let Ok(v) = num.parse::<u32>() {
                        if v > 0 {
                            return Ok(WritebackPolicy::Periodic(v));
                        }
                    }
                }
                Err(ParsePolicyError(s.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axes() {
        let labels: Vec<String> = WritebackPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["s", "a", "p1", "p5", "p15", "p30", "n"]);
    }

    #[test]
    fn parse_roundtrip() {
        for p in WritebackPolicy::ALL {
            assert_eq!(p.label().parse::<WritebackPolicy>().unwrap(), p);
        }
        assert_eq!(
            "p120".parse::<WritebackPolicy>().unwrap(),
            WritebackPolicy::Periodic(120)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "x", "p", "p0", "ps", "S"] {
            assert!(bad.parse::<WritebackPolicy>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn period_only_for_periodic() {
        assert_eq!(
            WritebackPolicy::Periodic(5).period(),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(WritebackPolicy::WriteThrough.period(), None);
        assert_eq!(WritebackPolicy::None.period(), None);
    }

    #[test]
    fn only_s_is_synchronous() {
        assert!(WritebackPolicy::WriteThrough.is_synchronous());
        assert!(!WritebackPolicy::AsyncWriteThrough.is_synchronous());
        assert!(!WritebackPolicy::Periodic(1).is_synchronous());
        assert!(!WritebackPolicy::None.is_synchronous());
    }

    #[test]
    fn forty_nine_combinations() {
        let mut n = 0;
        for _ram in WritebackPolicy::ALL {
            for _flash in WritebackPolicy::ALL {
                n += 1;
            }
        }
        assert_eq!(n, 49);
    }
}
