//! Structured results: serializable reports, durable sinks, resumable
//! result files.
//!
//! The paper's evaluation is a large grid of config × workload sweeps;
//! every run of that grid used to end as a `Vec<SimReport>` in RAM — a
//! crashed 16-job sweep restarted from zero, and nothing survived the
//! process to be diffed across runs. This module is the durable half of
//! the results path:
//!
//! - **Serialization**: [`report_to_json`] / [`report_from_json`] encode a
//!   complete [`SimReport`] — counters, latency histograms, device
//!   windows, the flash I/O log — as dependency-free
//!   [`Json`], exactly (u64 counters never pass
//!   through an `f64`; floats use shortest-round-trip formatting). The row
//!   format is versioned by [`REPORT_SCHEMA`]; a pinned golden row in
//!   `tests/results_pipeline.rs` makes schema drift fail loudly.
//! - **Sinks**: a [`ResultSink`] receives each sweep job's [`ResultRow`]
//!   as the job finishes. [`MemorySink`] retains rows in RAM (the old
//!   behavior, now opt-in), [`JsonlSink`] appends one JSON row per line to
//!   a file with a flush per row (a killed process loses at most the row
//!   being written), and [`TeeSink`] / [`sink_fn`] compose.
//! - **Resume**: [`scan_jsonl`] reads the valid prefix of an existing
//!   results file — tolerating the torn final line a kill leaves behind —
//!   so [`Sweep::resume_from`](crate::Sweep::resume_from) can skip
//!   finished jobs and [`JsonlSink::resume`] can append after them. An
//!   interrupted-then-resumed sweep produces the same row set as an
//!   uninterrupted one (pinned by `tests/results_pipeline.rs`).

use std::fs::{File, OpenOptions};
use std::io::{self, Seek as _, Write as _};
use std::path::{Path, PathBuf};

use fcache_cache::CacheStats;
use fcache_des::SimTime;
use fcache_device::{IoDirection, IoLogEntry, WindowStat};
use fcache_filer::FilerStats;
use fcache_net::SegmentStats;
use fcache_types::{FleetTopology, Json};

use crate::config::SimConfig;
use crate::devsvc::DeviceStatsSnapshot;
use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::metrics::MetricsSnapshot;
use crate::report::{FleetStats, HostLoadStats, ShardServiceStats, ShardStats, SimReport};
use crate::robust::{FaultWindowStat, RobustnessStats};
use crate::telemetry::{TelemetryStats, TelemetryWindow};
use fcache_remote::RemoteStats;
use fcache_types::Phase;

/// Version stamped into every serialized result row. Bump it whenever the
/// row layout changes shape; readers reject rows from other schemas
/// instead of misinterpreting them.
pub const REPORT_SCHEMA: u64 = 1;

/// One finished sweep job, as delivered to a [`ResultSink`]: the job's
/// identity (index in sweep order + label), the configuration it ran, and
/// its report. Failed jobs never reach a sink — their error stays in the
/// [`SweepResults`](crate::SweepResults) — so a results file only ever
/// holds completed rows (which is what makes label-based resume sound).
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Job index in sweep (push) order.
    pub index: usize,
    /// The job's label (unique within a sweep; the resume key).
    pub label: String,
    /// The configuration the job ran.
    pub config: SimConfig,
    /// The job's report.
    pub report: SimReport,
}

/// A result row read back from a file: everything [`ResultRow`] carries
/// except the configuration, which is serialized as a human/diff-oriented
/// summary rather than round-tripped (reconstructing a byte-exact
/// `SimConfig` is neither needed for resume nor for reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedRow {
    /// Job index recorded in the row.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Summary of the configuration (the serialized `config` object,
    /// verbatim).
    pub config: Json,
    /// The decoded report, exact to the bit.
    pub report: SimReport,
}

/// Receives result rows from a [`Sweep`](crate::Sweep) as jobs finish.
///
/// Delivery is serialized (one row at a time, any worker thread), in
/// completion order. A sink error stops further deliveries and surfaces as
/// [`SweepResults::sink_error`](crate::SweepResults::sink_error); the
/// sweep's simulations still run to completion.
pub trait ResultSink: Send {
    /// Consumes one finished job's row.
    fn on_row(&mut self, row: ResultRow) -> io::Result<()>;

    /// Flushes any buffered state (called once after the last row).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Retains every row in memory, in delivery (completion) order.
#[derive(Debug, Default)]
pub struct MemorySink {
    rows: Vec<ResultRow>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rows delivered so far, in completion order.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Consumes the sink, returning its rows sorted back into job order.
    pub fn into_rows(self) -> Vec<ResultRow> {
        let mut rows = self.rows;
        rows.sort_by_key(|r| r.index);
        rows
    }
}

impl ResultSink for MemorySink {
    fn on_row(&mut self, row: ResultRow) -> io::Result<()> {
        self.rows.push(row);
        Ok(())
    }
}

/// Streams rows into a plain function — the adapter for harnesses that
/// extract a few scalars per row and drop the rest (no report vector is
/// ever materialized).
pub struct FnSink<F>(F);

impl<F: FnMut(ResultRow) + Send> ResultSink for FnSink<F> {
    fn on_row(&mut self, row: ResultRow) -> io::Result<()> {
        (self.0)(row);
        Ok(())
    }
}

/// Wraps a closure as a [`ResultSink`].
pub fn sink_fn<F: FnMut(ResultRow) + Send>(f: F) -> FnSink<F> {
    FnSink(f)
}

/// Duplicates every row to two sinks (e.g. a durable [`JsonlSink`] plus an
/// in-memory scalar extractor). The first sink's error wins.
pub struct TeeSink<'s> {
    a: &'s mut dyn ResultSink,
    b: &'s mut dyn ResultSink,
}

impl<'s> TeeSink<'s> {
    /// Tees rows to `a` then `b`.
    pub fn new(a: &'s mut dyn ResultSink, b: &'s mut dyn ResultSink) -> Self {
        Self { a, b }
    }
}

impl ResultSink for TeeSink<'_> {
    fn on_row(&mut self, row: ResultRow) -> io::Result<()> {
        self.a.on_row(row.clone())?;
        self.b.on_row(row)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.a.flush()?;
        self.b.flush()
    }
}

/// Appends one serialized row per line to a file, flushing after every row
/// so a killed process loses at most the line being written.
#[derive(Debug)]
pub struct JsonlSink {
    file: File,
    path: PathBuf,
    /// Reused line buffer (rows are written whole, one syscall each).
    buf: String,
}

impl JsonlSink {
    /// Creates (or truncates) a results file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            file,
            path,
            buf: String::new(),
        })
    }

    /// Opens a results file for resumption: scans its valid row prefix,
    /// truncates the torn final line a killed writer leaves behind (if
    /// any), and positions writes after the last valid row. Returns the
    /// sink plus the rows already present (their labels are the jobs a
    /// resumed sweep should skip; their configs let callers cross-check
    /// identity) — one decode pass serves truncation, skipping, and
    /// verification.
    ///
    /// A missing file starts empty, so `resume` on a fresh path behaves
    /// exactly like [`JsonlSink::create`]. A file with a complete but
    /// undecodable line — mid-file corruption, another schema, not a
    /// results file — is an error, never a truncation (see
    /// [`scan_jsonl`]).
    pub fn resume(path: impl AsRef<Path>) -> io::Result<(Self, Vec<DecodedRow>)> {
        let path = path.as_ref().to_path_buf();
        let (valid_bytes, rows) = scan_jsonl(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false) // existing rows are the point of resuming
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(valid_bytes)?;
        let mut sink = Self {
            file,
            path,
            buf: String::new(),
        };
        sink.file.seek(io::SeekFrom::End(0))?;
        Ok((sink, rows))
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ResultSink for JsonlSink {
    fn on_row(&mut self, row: ResultRow) -> io::Result<()> {
        self.buf.clear();
        row_to_json(&row).encode(&mut self.buf);
        self.buf.push('\n');
        // One write_all per row, then flush: the row is durable (modulo OS
        // buffering) before the next job can complete.
        self.file.write_all(self.buf.as_bytes())?;
        self.file.flush()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// Scans a JSONL results file: returns the byte length of the valid row
/// prefix and the decoded rows it contains. A missing file is an empty
/// prefix,
/// not an error.
///
/// Leniency is deliberately narrow: only a torn **final** line — one with
/// no `\n` terminator, exactly what a killed flush-per-row writer leaves
/// (possibly mid-multibyte-character) — is tolerated and excluded from
/// the valid prefix. A *complete* line that fails to decode (corruption
/// mid-file, a row from another [`REPORT_SCHEMA`], a file that is not a
/// results file at all) is an error: truncating there would destroy data
/// that was never ours to discard.
pub fn scan_jsonl(path: impl AsRef<Path>) -> io::Result<(u64, Vec<DecodedRow>)> {
    let path = path.as_ref();
    // Bytes, not a String: a kill can tear the final line mid-UTF-8
    // sequence, which must read as "torn tail", not an I/O error.
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((0, Vec::new())),
        Err(e) => return Err(e),
    };
    let corrupt = |line_no: usize, why: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: line {line_no}: {why} (complete but unreadable — refusing to \
                 truncate; repair or delete the file to start over)",
                path.display()
            ),
        )
    };
    let mut valid = 0usize;
    let mut rows = Vec::new();
    let mut line_no = 0usize;
    while valid < bytes.len() {
        let rest = &bytes[valid..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break; // torn final line (no terminator): truncatable tail
        };
        line_no += 1;
        let line =
            std::str::from_utf8(&rest[..nl]).map_err(|_| corrupt(line_no, "invalid UTF-8"))?;
        if !line.is_empty() {
            match decode_row_line(line) {
                Ok(row) => rows.push(row),
                Err(e) => return Err(corrupt(line_no, &e)),
            }
        }
        valid += nl + 1;
    }
    Ok((valid as u64, rows))
}

/// Reads a complete results file strictly: every line must be a valid row
/// of the current [`REPORT_SCHEMA`]. Errors name the offending line.
pub fn read_rows(path: impl AsRef<Path>) -> io::Result<Vec<DecodedRow>> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = decode_row_line(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.as_ref().display(), i + 1),
            )
        })?;
        rows.push(row);
    }
    Ok(rows)
}

fn decode_row_line(line: &str) -> Result<DecodedRow, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    row_from_json(&v)
}

// ---------------------------------------------------------------------------
// Encoding

/// Serializes one result row (schema, identity, config summary, report).
pub fn row_to_json(row: &ResultRow) -> Json {
    Json::obj()
        .field("schema", Json::U64(REPORT_SCHEMA))
        .field("index", Json::U64(row.index as u64))
        .field("label", Json::Str(row.label.clone()))
        .field("config", config_to_json(&row.config))
        .field("report", report_to_json(&row.report))
}

/// Serializes a configuration *summary*: the axes that identify a row
/// when diffing result files or checking that a resumed sweep matches the
/// run that produced the file (architecture, sizes, policies, timing
/// model, prefetch/persistence/duplex knobs, scale, seed). Not
/// round-tripped — [`row_from_json`] hands it back verbatim.
pub fn config_to_json(cfg: &SimConfig) -> Json {
    let mut j = Json::obj()
        .field("arch", Json::Str(cfg.arch.name().to_string()))
        .field("ram", Json::Str(cfg.ram_size.to_string()))
        .field("flash", Json::Str(cfg.flash_size.to_string()))
        .field("ram_policy", Json::Str(cfg.ram_policy.label()))
        .field("flash_policy", Json::Str(cfg.flash_policy.label()))
        .field("flash_timing", Json::Str(cfg.flash_timing.describe()))
        .field("prefetch", Json::F64(cfg.filer.fast_read_rate))
        .field("persistent", Json::Bool(cfg.flash_model.persistent))
        .field("duplex", Json::Bool(cfg.duplex_network))
        .field("time_scale", Json::U64(cfg.time_scale))
        .field("seed", Json::U64(cfg.seed));
    // Fault axes appear only when a plan exists, so fault-free rows keep
    // their exact pre-fault encoding.
    if !cfg.fault_plan.is_empty() {
        j = j.field("fault", cfg.fault_plan.to_json()).field(
            "degraded",
            Json::Str(cfg.robustness.degraded.label().to_string()),
        );
    }
    // Remote-tier axes, likewise only when non-default.
    if cfg.shards > 1 || cfg.replicas > 1 || cfg.hedge.is_some() {
        j = j
            .field("shards", Json::U64(u64::from(cfg.shards)))
            .field("replicas", Json::U64(u64::from(cfg.replicas)))
            .field(
                "hedge_ns",
                match cfg.hedge {
                    Some(d) => Json::U64(d.as_nanos()),
                    None => Json::Null,
                },
            );
    }
    // Fleet axes, only for rows that are one cell of a fleet run. The
    // coordinator's resume path cross-checks these, so a fleet results
    // file can't silently absorb rows from a different fleet shape.
    if let Some(fleet) = &cfg.fleet {
        j = j
            .field("fleet_cell", Json::U64(u64::from(fleet.cell)))
            .field("fleet_cells", Json::U64(u64::from(fleet.cells)))
            .field("fleet_host_base", Json::U64(u64::from(fleet.host_base)))
            .field("fleet_hosts", Json::U64(u64::from(fleet.fleet_hosts)))
            .field("fleet_fanin", Json::U64(u64::from(fleet.fanin())));
    }
    j
}

/// Serializes a complete report, exactly (see the round-trip property test
/// in `tests/results_pipeline.rs`).
pub fn report_to_json(r: &SimReport) -> Json {
    let j = Json::obj()
        .field("metrics", metrics_to_json(&r.metrics))
        .field("ram", cache_to_json(&r.ram))
        .field("flash", cache_to_json(&r.flash))
        .field("unified", cache_to_json(&r.unified))
        .field(
            "filer",
            Json::obj()
                .field("fast_reads", Json::U64(r.filer.fast_reads))
                .field("slow_reads", Json::U64(r.filer.slow_reads))
                .field("writes", Json::U64(r.filer.writes)),
        )
        .field("net", net_to_json(&r.net))
        .field("device", device_to_json(&r.device))
        .field(
            "device_windows",
            match &r.device_windows {
                None => Json::Null,
                Some(ws) => Json::Arr(ws.iter().map(window_to_json).collect()),
            },
        )
        .field("end_time_ns", Json::U64(r.end_time.as_nanos()))
        .field("events", Json::U64(r.events))
        .field(
            "flash_iolog",
            match &r.flash_iolog {
                None => Json::Null,
                Some(entries) => Json::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            let dir = match e.dir {
                                IoDirection::Read => "r",
                                IoDirection::Write => "w",
                            };
                            Json::Arr(vec![Json::Str(dir.to_string()), Json::U64(e.lba)])
                        })
                        .collect(),
                ),
            },
        )
        .field("robustness", robustness_to_json(&r.robustness));
    // The shard section appears only when the run engaged the remote tier,
    // so single-filer rows keep their exact pre-remote encoding.
    let mut j = j;
    if r.shard.engaged() {
        j = j.field("shard", shard_to_json(&r.shard));
    }
    // The telemetry section likewise appears only when telemetry ran, so
    // telemetry-off rows keep their exact earlier encoding.
    if r.telemetry.engaged() {
        j = j.field("telemetry", telemetry_to_json(&r.telemetry));
    }
    // The fleet section appears only for fleet-cell rows.
    if r.fleet.engaged() {
        j = j.field("fleet", fleet_to_json(&r.fleet));
    }
    j
}

/// Network counters; the queueing pair appears only when some packet
/// actually waited, so uncontended rows (every pre-fleet row) keep their
/// exact three-field encoding.
fn net_to_json(n: &SegmentStats) -> Json {
    let mut j = Json::obj()
        .field("packets", Json::U64(n.packets))
        .field("payload_bytes", Json::U64(n.payload_bytes))
        .field("busy_ns", Json::U64(n.busy.as_nanos()));
    if n.queue_waits > 0 {
        j = j
            .field("queue_wait_ns", Json::U64(n.queue_wait.as_nanos()))
            .field("queue_waits", Json::U64(n.queue_waits));
    }
    j
}

/// Fleet topology plus the per-host load vector as compact
/// `[host, read_ops, write_ops, read_latency_ns, write_latency_ns]` rows.
fn fleet_to_json(f: &FleetStats) -> Json {
    let topo = f.topology.as_ref().expect("encoded only when engaged");
    Json::obj()
        .field("cell", Json::U64(u64::from(topo.cell)))
        .field("cells", Json::U64(u64::from(topo.cells)))
        .field("host_base", Json::U64(u64::from(topo.host_base)))
        .field("fleet_hosts", Json::U64(u64::from(topo.fleet_hosts)))
        .field(
            "hosts_per_segment",
            Json::U64(u64::from(topo.hosts_per_segment)),
        )
        .field(
            "per_host",
            Json::Arr(
                f.per_host
                    .iter()
                    .map(|h| {
                        Json::Arr(vec![
                            Json::U64(u64::from(h.host)),
                            Json::U64(h.read_ops),
                            Json::U64(h.write_ops),
                            Json::U64(h.read_latency_ns),
                            Json::U64(h.write_latency_ns),
                        ])
                    })
                    .collect(),
            ),
        )
}

/// Telemetry: per-phase totals as fixed-order arrays (index =
/// [`Phase::index`]), per-phase histograms in the sparse histogram
/// encoding, and the unified window series as compact rows.
fn telemetry_to_json(t: &TelemetryStats) -> Json {
    Json::obj()
        .field("spans", Json::U64(t.spans))
        .field(
            "phase_ns",
            Json::Arr(t.phase_ns.iter().map(|&n| Json::U64(n)).collect()),
        )
        .field(
            "phase_ops",
            Json::Arr(t.phase_ops.iter().map(|&n| Json::U64(n)).collect()),
        )
        .field(
            "phase_hists",
            Json::Arr(t.phase_hists.iter().map(hist_to_json).collect()),
        )
        .field("window_ns", Json::U64(t.window_ns))
        .field(
            "windows",
            Json::Arr(t.windows.iter().map(telemetry_window_to_json).collect()),
        )
}

/// One unified window as a compact row:
/// `[start, end, ops, read_blocks, write_blocks, hit_blocks, filer_blocks,
/// latency_ns, retries, degraded_ns, dirty_num, dirty_den, depth_sum,
/// depth_samples, [shard_live_ns…]]`.
fn telemetry_window_to_json(w: &TelemetryWindow) -> Json {
    Json::Arr(vec![
        Json::U64(w.start_ns),
        Json::U64(w.end_ns),
        Json::U64(w.ops),
        Json::U64(w.read_blocks),
        Json::U64(w.write_blocks),
        Json::U64(w.hit_blocks),
        Json::U64(w.filer_blocks),
        Json::U64(w.latency_ns),
        Json::U64(w.retries),
        Json::U64(w.degraded_ns),
        Json::U64(w.dirty_num),
        Json::U64(w.dirty_den),
        Json::U64(w.depth_sum),
        Json::U64(w.depth_samples),
        Json::Arr(w.shard_live_ns.iter().map(|&n| Json::U64(n)).collect()),
    ])
}

/// Remote-tier counters: topology, per-shard tallies (compact
/// `[fast, slow, writes, outage_ns]` rows), and the replication-layer
/// counters flattened alongside.
fn shard_to_json(s: &ShardStats) -> Json {
    let r = &s.remote;
    Json::obj()
        .field("shards", Json::U64(u64::from(s.shards)))
        .field("replicas", Json::U64(u64::from(s.replicas)))
        .field("hedge_ns", Json::U64(s.hedge_ns))
        .field(
            "per_shard",
            Json::Arr(
                s.per_shard
                    .iter()
                    .map(|p| {
                        Json::Arr(vec![
                            Json::U64(p.fast_reads),
                            Json::U64(p.slow_reads),
                            Json::U64(p.writes),
                            Json::U64(p.outage_ns),
                        ])
                    })
                    .collect(),
            ),
        )
        .field("hedges_launched", Json::U64(r.hedges_launched))
        .field("hedges_won", Json::U64(r.hedges_won))
        .field("hedges_cancelled", Json::U64(r.hedges_cancelled))
        .field("failovers", Json::U64(r.failovers))
        .field("re_replicated_blocks", Json::U64(r.re_replicated_blocks))
        .field("re_replication_bytes", Json::U64(r.re_replication_bytes))
        .field("under_intervals", Json::U64(r.under_intervals))
        .field("under_peak", Json::U64(r.under_peak))
        .field("under_now", Json::U64(r.under_now))
        .field("under_time_ns", Json::U64(r.under_time_ns))
}

/// Robustness counters serialize compactly; fault-free runs encode the
/// all-zero default, and PR-5-era rows without the field decode to it.
fn robustness_to_json(r: &RobustnessStats) -> Json {
    Json::obj()
        .field("retries", Json::U64(r.retries))
        .field("timeouts", Json::U64(r.timeouts))
        .field("failed_ops", Json::U64(r.failed_ops))
        .field("queued_ops", Json::U64(r.queued_ops))
        .field("buffered_writes", Json::U64(r.buffered_writes))
        .field("degraded_time_ns", Json::U64(r.degraded_time.as_nanos()))
        .field("drain_events", Json::U64(r.drain_events))
        .field("drain_depth_max", Json::U64(r.drain_depth_max))
        .field("drain_time_ns", Json::U64(r.drain_time.as_nanos()))
        .field(
            "windows",
            Json::Arr(
                r.windows
                    .iter()
                    .map(|w| {
                        Json::Arr(vec![
                            Json::U64(w.start.as_nanos()),
                            Json::U64(w.end.as_nanos()),
                            Json::U64(w.ops),
                            Json::U64(w.ok),
                        ])
                    })
                    .collect(),
            ),
        )
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj()
        .field("read_ops", Json::U64(m.read_ops))
        .field("write_ops", Json::U64(m.write_ops))
        .field("read_blocks", Json::U64(m.read_blocks))
        .field("write_blocks", Json::U64(m.write_blocks))
        .field("read_latency_ns", Json::U64(m.read_latency.as_nanos()))
        .field("write_latency_ns", Json::U64(m.write_latency.as_nanos()))
        .field("tracked_writes", Json::U64(m.tracked_writes))
        .field("writes_invalidating", Json::U64(m.writes_invalidating))
        .field("invalidated_blocks", Json::U64(m.invalidated_blocks))
        .field("read_hist", hist_to_json(&m.read_hist))
        .field("write_hist", hist_to_json(&m.write_hist))
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj()
        .field("hits", Json::U64(c.hits))
        .field("misses", Json::U64(c.misses))
        .field("insertions", Json::U64(c.insertions))
        .field("clean_evictions", Json::U64(c.clean_evictions))
        .field("dirty_evictions", Json::U64(c.dirty_evictions))
        .field("invalidations", Json::U64(c.invalidations))
        .field("overwrites", Json::U64(c.overwrites))
}

fn device_to_json(d: &DeviceStatsSnapshot) -> Json {
    Json::obj()
        .field("reads", Json::U64(d.reads))
        .field("writes", Json::U64(d.writes))
        .field("read_time_ns", Json::U64(d.read_time.as_nanos()))
        .field("write_time_ns", Json::U64(d.write_time.as_nanos()))
        .field("queue_waits", Json::U64(d.queue_waits))
        .field("depth_sum", Json::U64(d.depth_sum))
        .field("depth_samples", Json::U64(d.depth_samples))
        .field("depth_max", Json::U64(d.depth_max))
        .field("read_hist", hist_to_json(&d.read_hist))
        .field("write_hist", hist_to_json(&d.write_hist))
}

fn window_to_json(w: &WindowStat) -> Json {
    Json::obj()
        .field("start_io", Json::U64(w.start_io))
        .field("read_avg_us", Json::F64(w.read_avg_us))
        .field("write_avg_us", Json::F64(w.write_avg_us))
        .field("reads", Json::U64(w.reads))
        .field("writes", Json::U64(w.writes))
}

/// Histograms serialize sparsely: `[[bucket_index, count], …]` for the
/// non-empty buckets (of 64, most are empty). The total is derived on
/// decode — a live histogram's count always equals its bucket sum.
fn hist_to_json(h: &HistogramSnapshot) -> Json {
    Json::Arr(
        h.buckets()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Decoding

/// Decodes one serialized row, verifying its schema version.
pub fn row_from_json(v: &Json) -> Result<DecodedRow, String> {
    let schema = u(v, "schema")?;
    if schema != REPORT_SCHEMA {
        return Err(format!(
            "row has schema {schema}, this build reads schema {REPORT_SCHEMA}"
        ));
    }
    Ok(DecodedRow {
        index: u(v, "index")? as usize,
        label: v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("missing/invalid field \"label\"")?
            .to_string(),
        config: v.get("config").cloned().ok_or("missing field \"config\"")?,
        report: report_from_json(v.get("report").ok_or("missing field \"report\"")?)?,
    })
}

/// Decodes a serialized report, exactly inverse to [`report_to_json`].
pub fn report_from_json(v: &Json) -> Result<SimReport, String> {
    let filer = v.get("filer").ok_or("missing field \"filer\"")?;
    let net = v.get("net").ok_or("missing field \"net\"")?;
    Ok(SimReport {
        metrics: metrics_from_json(v.get("metrics").ok_or("missing field \"metrics\"")?)?,
        ram: cache_from_json(v.get("ram").ok_or("missing field \"ram\"")?)?,
        flash: cache_from_json(v.get("flash").ok_or("missing field \"flash\"")?)?,
        unified: cache_from_json(v.get("unified").ok_or("missing field \"unified\"")?)?,
        filer: FilerStats {
            fast_reads: u(filer, "fast_reads")?,
            slow_reads: u(filer, "slow_reads")?,
            writes: u(filer, "writes")?,
        },
        net: SegmentStats {
            packets: u(net, "packets")?,
            payload_bytes: u(net, "payload_bytes")?,
            busy: t(net, "busy_ns")?,
            // Lenient: rows written before shared wires existed (and rows
            // where nothing queued) carry no queueing fields.
            queue_wait: SimTime::from_nanos(
                net.get("queue_wait_ns").and_then(Json::as_u64).unwrap_or(0),
            ),
            queue_waits: net.get("queue_waits").and_then(Json::as_u64).unwrap_or(0),
        },
        device: device_from_json(v.get("device").ok_or("missing field \"device\"")?)?,
        device_windows: match v.get("device_windows") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(window_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(other) => return Err(format!("invalid device_windows: {other:?}")),
        },
        end_time: t(v, "end_time_ns")?,
        events: u(v, "events")?,
        flash_iolog: match v.get("flash_iolog") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(|e| {
                        let pair = e.as_arr().filter(|a| a.len() == 2);
                        let pair = pair.ok_or("invalid flash_iolog entry")?;
                        let dir = match pair[0].as_str() {
                            Some("r") => IoDirection::Read,
                            Some("w") => IoDirection::Write,
                            _ => return Err("invalid flash_iolog direction".to_string()),
                        };
                        let lba = pair[1].as_u64().ok_or("invalid flash_iolog lba")?;
                        Ok(IoLogEntry { dir, lba })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            Some(other) => return Err(format!("invalid flash_iolog: {other:?}")),
        },
        // Optional for backward compatibility: rows written before the
        // fault-injection schema addition decode to the all-zero default.
        robustness: match v.get("robustness") {
            None | Some(Json::Null) => RobustnessStats::default(),
            Some(r) => robustness_from_json(r)?,
        },
        // Likewise optional: rows from single-filer runs (and older
        // builds) decode to the disengaged default.
        shard: match v.get("shard") {
            None | Some(Json::Null) => ShardStats::default(),
            Some(s) => shard_from_json(s)?,
        },
        // Telemetry-off rows (and rows from earlier builds) decode to the
        // disengaged default.
        telemetry: match v.get("telemetry") {
            None | Some(Json::Null) => TelemetryStats::default(),
            Some(t) => telemetry_from_json(t)?,
        },
        // Non-fleet rows decode to the disengaged default.
        fleet: match v.get("fleet") {
            None | Some(Json::Null) => FleetStats::default(),
            Some(f) => fleet_from_json(f)?,
        },
    })
}

fn fleet_from_json(v: &Json) -> Result<FleetStats, String> {
    Ok(FleetStats {
        topology: Some(FleetTopology {
            cell: u(v, "cell")? as u32,
            cells: u(v, "cells")? as u32,
            host_base: u(v, "host_base")? as u32,
            fleet_hosts: u(v, "fleet_hosts")? as u32,
            hosts_per_segment: u(v, "hosts_per_segment")? as u16,
        }),
        per_host: v
            .get("per_host")
            .and_then(Json::as_arr)
            .ok_or("missing/invalid fleet per_host")?
            .iter()
            .map(|p| {
                let q = p.as_arr().filter(|a| a.len() == 5);
                let q = q.ok_or(
                    "fleet per_host row must be [host, read_ops, write_ops, \
                     read_latency_ns, write_latency_ns]",
                )?;
                let n = |i: usize| q[i].as_u64().ok_or("invalid fleet per_host entry");
                Ok(HostLoadStats {
                    host: n(0)? as u32,
                    read_ops: n(1)?,
                    write_ops: n(2)?,
                    read_latency_ns: n(3)?,
                    write_latency_ns: n(4)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

fn telemetry_from_json(v: &Json) -> Result<TelemetryStats, String> {
    fn phase_array(v: &Json, key: &str) -> Result<[u64; Phase::COUNT], String> {
        let items = v
            .get(key)
            .and_then(Json::as_arr)
            .filter(|a| a.len() == Phase::COUNT)
            .ok_or_else(|| format!("telemetry {key} must be an array of {}", Phase::COUNT))?;
        let mut out = [0u64; Phase::COUNT];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = item
                .as_u64()
                .ok_or_else(|| format!("invalid telemetry {key} entry"))?;
        }
        Ok(out)
    }
    let hists = v
        .get("phase_hists")
        .and_then(Json::as_arr)
        .filter(|a| a.len() == Phase::COUNT)
        .ok_or_else(|| format!("telemetry phase_hists must be an array of {}", Phase::COUNT))?;
    let mut phase_hists: [HistogramSnapshot; Phase::COUNT] = Default::default();
    for (slot, item) in phase_hists.iter_mut().zip(hists) {
        *slot = hist_from_json(item)?;
    }
    Ok(TelemetryStats {
        spans: u(v, "spans")?,
        phase_ns: phase_array(v, "phase_ns")?,
        phase_ops: phase_array(v, "phase_ops")?,
        phase_hists,
        window_ns: u(v, "window_ns")?,
        windows: v
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("missing/invalid telemetry windows")?
            .iter()
            .map(telemetry_window_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn telemetry_window_from_json(v: &Json) -> Result<TelemetryWindow, String> {
    let q = v.as_arr().filter(|a| a.len() == 15);
    let q = q.ok_or("telemetry window must be a 15-element array")?;
    let n = |i: usize| q[i].as_u64().ok_or("invalid telemetry window entry");
    Ok(TelemetryWindow {
        start_ns: n(0)?,
        end_ns: n(1)?,
        ops: n(2)?,
        read_blocks: n(3)?,
        write_blocks: n(4)?,
        hit_blocks: n(5)?,
        filer_blocks: n(6)?,
        latency_ns: n(7)?,
        retries: n(8)?,
        degraded_ns: n(9)?,
        dirty_num: n(10)?,
        dirty_den: n(11)?,
        depth_sum: n(12)?,
        depth_samples: n(13)?,
        shard_live_ns: q[14]
            .as_arr()
            .ok_or("invalid telemetry window shard_live_ns")?
            .iter()
            .map(|x| x.as_u64().ok_or("invalid shard_live_ns entry".to_string()))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn shard_from_json(v: &Json) -> Result<ShardStats, String> {
    Ok(ShardStats {
        shards: u(v, "shards")? as u16,
        replicas: u(v, "replicas")? as u16,
        hedge_ns: u(v, "hedge_ns")?,
        per_shard: v
            .get("per_shard")
            .and_then(Json::as_arr)
            .ok_or("missing/invalid shard per_shard")?
            .iter()
            .map(|p| {
                let q = p.as_arr().filter(|a| a.len() == 4);
                let q = q.ok_or("per_shard row must be [fast, slow, writes, outage_ns]")?;
                let n = |i: usize| q[i].as_u64().ok_or("invalid per_shard entry");
                Ok(ShardServiceStats {
                    fast_reads: n(0)?,
                    slow_reads: n(1)?,
                    writes: n(2)?,
                    outage_ns: n(3)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        remote: RemoteStats {
            hedges_launched: u(v, "hedges_launched")?,
            hedges_won: u(v, "hedges_won")?,
            hedges_cancelled: u(v, "hedges_cancelled")?,
            failovers: u(v, "failovers")?,
            re_replicated_blocks: u(v, "re_replicated_blocks")?,
            re_replication_bytes: u(v, "re_replication_bytes")?,
            under_intervals: u(v, "under_intervals")?,
            under_peak: u(v, "under_peak")?,
            under_now: u(v, "under_now")?,
            under_time_ns: u(v, "under_time_ns")?,
        },
    })
}

fn robustness_from_json(v: &Json) -> Result<RobustnessStats, String> {
    Ok(RobustnessStats {
        retries: u(v, "retries")?,
        timeouts: u(v, "timeouts")?,
        failed_ops: u(v, "failed_ops")?,
        queued_ops: u(v, "queued_ops")?,
        buffered_writes: u(v, "buffered_writes")?,
        degraded_time: t(v, "degraded_time_ns")?,
        drain_events: u(v, "drain_events")?,
        drain_depth_max: u(v, "drain_depth_max")?,
        drain_time: t(v, "drain_time_ns")?,
        windows: v
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("missing/invalid robustness windows")?
            .iter()
            .map(|w| {
                let q = w.as_arr().filter(|a| a.len() == 4);
                let q = q.ok_or("robustness window must be [start, end, ops, ok]")?;
                let n = |i: usize| q[i].as_u64().ok_or("invalid robustness window entry");
                Ok(FaultWindowStat {
                    start: SimTime::from_nanos(n(0)?),
                    end: SimTime::from_nanos(n(1)?),
                    ops: n(2)?,
                    ok: n(3)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

fn metrics_from_json(v: &Json) -> Result<MetricsSnapshot, String> {
    Ok(MetricsSnapshot {
        read_ops: u(v, "read_ops")?,
        write_ops: u(v, "write_ops")?,
        read_blocks: u(v, "read_blocks")?,
        write_blocks: u(v, "write_blocks")?,
        read_latency: t(v, "read_latency_ns")?,
        write_latency: t(v, "write_latency_ns")?,
        tracked_writes: u(v, "tracked_writes")?,
        writes_invalidating: u(v, "writes_invalidating")?,
        invalidated_blocks: u(v, "invalidated_blocks")?,
        read_hist: hist_from_json(v.get("read_hist").ok_or("missing read_hist")?)?,
        write_hist: hist_from_json(v.get("write_hist").ok_or("missing write_hist")?)?,
    })
}

fn cache_from_json(v: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: u(v, "hits")?,
        misses: u(v, "misses")?,
        insertions: u(v, "insertions")?,
        clean_evictions: u(v, "clean_evictions")?,
        dirty_evictions: u(v, "dirty_evictions")?,
        invalidations: u(v, "invalidations")?,
        overwrites: u(v, "overwrites")?,
    })
}

fn device_from_json(v: &Json) -> Result<DeviceStatsSnapshot, String> {
    Ok(DeviceStatsSnapshot {
        reads: u(v, "reads")?,
        writes: u(v, "writes")?,
        read_time: t(v, "read_time_ns")?,
        write_time: t(v, "write_time_ns")?,
        queue_waits: u(v, "queue_waits")?,
        depth_sum: u(v, "depth_sum")?,
        depth_samples: u(v, "depth_samples")?,
        depth_max: u(v, "depth_max")?,
        read_hist: hist_from_json(v.get("read_hist").ok_or("missing read_hist")?)?,
        write_hist: hist_from_json(v.get("write_hist").ok_or("missing write_hist")?)?,
    })
}

fn window_from_json(v: &Json) -> Result<WindowStat, String> {
    Ok(WindowStat {
        start_io: u(v, "start_io")?,
        read_avg_us: f(v, "read_avg_us")?,
        write_avg_us: f(v, "write_avg_us")?,
        reads: u(v, "reads")?,
        writes: u(v, "writes")?,
    })
}

fn hist_from_json(v: &Json) -> Result<HistogramSnapshot, String> {
    let pairs = v.as_arr().ok_or("histogram must be an array")?;
    let mut buckets = [0u64; BUCKETS];
    let mut total: u64 = 0;
    for p in pairs {
        let pair = p.as_arr().filter(|a| a.len() == 2);
        let pair = pair.ok_or("histogram entry must be [index, count]")?;
        let i = pair[0].as_u64().ok_or("invalid histogram bucket index")? as usize;
        if i >= BUCKETS {
            return Err(format!("histogram bucket index {i} out of range"));
        }
        let count = pair[1].as_u64().ok_or("invalid histogram bucket count")?;
        // The encoder emits each non-empty bucket once: duplicates and
        // zero counts are foreign, and the derived total must not
        // overflow (a live histogram counts one sample at a time, so a
        // file claiming > u64::MAX samples is corrupt, not big).
        if count == 0 {
            return Err(format!("histogram bucket {i} has zero count"));
        }
        if buckets[i] != 0 {
            return Err(format!("duplicate histogram bucket index {i}"));
        }
        total = total
            .checked_add(count)
            .ok_or("histogram counts overflow u64")?;
        buckets[i] = count;
    }
    Ok(HistogramSnapshot::from_buckets(buckets))
}

fn u(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid u64 field {key:?}"))
}

fn t(v: &Json, key: &str) -> Result<SimTime, String> {
    u(v, key).map(SimTime::from_nanos)
}

fn f(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing/invalid f64 field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_histogram_roundtrips() {
        let mut buckets = [0u64; BUCKETS];
        buckets[0] = 3;
        buckets[17] = 9;
        buckets[63] = 1;
        let h = HistogramSnapshot::from_buckets(buckets);
        let back = hist_from_json(&hist_to_json(&h)).expect("decode");
        assert_eq!(back, h);
        assert_eq!(back.count(), 13);
        // The empty histogram is `[]`.
        assert_eq!(
            hist_to_json(&HistogramSnapshot::default()).to_string(),
            "[]"
        );
    }

    #[test]
    fn hostile_histograms_fail_decode_instead_of_overflowing() {
        // Well-formed JSON claiming impossible sample counts must be a
        // decode error, not a wrapped/panicking sum.
        for (bad, why) in [
            (format!("[[0,{}],[1,{}]]", u64::MAX, u64::MAX), "overflow"),
            ("[[0,1],[0,2]]".to_string(), "duplicate"),
            ("[[3,0]]".to_string(), "zero count"),
            ("[[64,1]]".to_string(), "out of range"),
        ] {
            let v = Json::parse(&bad).unwrap();
            let err = hist_from_json(&v).unwrap_err();
            assert!(err.contains(why), "{bad}: {err}");
        }
    }

    #[test]
    fn default_report_roundtrips() {
        let r = SimReport::default();
        let back = report_from_json(&report_to_json(&r)).expect("decode");
        assert_eq!(back, r);
    }

    #[test]
    fn row_rejects_other_schemas() {
        let row = ResultRow {
            index: 0,
            label: "x".into(),
            config: SimConfig::baseline(),
            report: SimReport::default(),
        };
        let mut v = row_to_json(&row);
        let Json::Obj(pairs) = &mut v else { panic!() };
        pairs[0].1 = Json::U64(REPORT_SCHEMA + 1);
        let err = row_from_json(&v).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn memory_sink_restores_job_order() {
        let mk = |index: usize| ResultRow {
            index,
            label: format!("job{index}"),
            config: SimConfig::baseline(),
            report: SimReport::default(),
        };
        let mut sink = MemorySink::new();
        for i in [2usize, 0, 1] {
            sink.on_row(mk(i)).unwrap();
        }
        assert_eq!(sink.rows().len(), 3);
        let ordered: Vec<usize> = sink.into_rows().iter().map(|r| r.index).collect();
        assert_eq!(ordered, [0, 1, 2]);
    }

    #[test]
    fn scan_tolerates_torn_tail_and_missing_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("fcache_results_scan_unit.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(scan_jsonl(&path).unwrap(), (0, Vec::new()));
        let labels_of =
            |rows: &[DecodedRow]| -> Vec<String> { rows.iter().map(|r| r.label.clone()).collect() };

        let row = |label: &str| {
            row_to_json(&ResultRow {
                index: 0,
                label: label.into(),
                config: SimConfig::baseline(),
                report: SimReport::default(),
            })
            .to_string()
        };
        let a = row("a");
        let b = row("b");
        let torn = &b[..b.len() / 2];
        std::fs::write(&path, format!("{a}\n{b}\n{torn}")).unwrap();
        let (valid, scanned) = scan_jsonl(&path).unwrap();
        assert_eq!(valid as usize, a.len() + b.len() + 2);
        assert_eq!(labels_of(&scanned), ["a", "b"]);

        // Resuming truncates the torn tail and appends after row b.
        let (mut sink, seen) = JsonlSink::resume(&path).unwrap();
        assert_eq!(labels_of(&seen), ["a", "b"]);
        sink.on_row(ResultRow {
            index: 2,
            label: "c".into(),
            config: SimConfig::baseline(),
            report: SimReport::default(),
        })
        .unwrap();
        drop(sink);
        let rows = read_rows(&path).unwrap();
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_sink_duplicates_rows_and_propagates_errors() {
        let mk = |index: usize| ResultRow {
            index,
            label: format!("job{index}"),
            config: SimConfig::baseline(),
            report: SimReport::default(),
        };
        let mut a = MemorySink::new();
        let mut b = MemorySink::new();
        let mut tee = TeeSink::new(&mut a, &mut b);
        tee.on_row(mk(0)).unwrap();
        tee.on_row(mk(1)).unwrap();
        tee.flush().unwrap();
        assert_eq!(a.rows().len(), 2);
        assert_eq!(b.rows().len(), 2);
        assert_eq!(a.rows()[1].label, b.rows()[1].label);

        struct Failing;
        impl ResultSink for Failing {
            fn on_row(&mut self, _row: ResultRow) -> io::Result<()> {
                Err(io::Error::other("nope"))
            }
        }
        let mut failing = Failing;
        let mut ok = MemorySink::new();
        let mut tee = TeeSink::new(&mut failing, &mut ok);
        assert!(tee.on_row(mk(0)).is_err());
        // First sink's error wins; the second never saw the row.
        assert!(ok.rows().is_empty());
    }

    #[test]
    fn read_rows_is_strict() {
        let dir = std::env::temp_dir();
        let path = dir.join("fcache_results_strict_unit.jsonl");
        std::fs::write(&path, "{\"schema\":1,\"nope\"\n").unwrap();
        let err = read_rows(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":1:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
