//! Cache architectures (§3.3).

use core::fmt;
use std::str::FromStr;

/// How the RAM and flash caches are organized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Architecture {
    /// "The flash cache is treated as an independent cache layer beneath
    /// the RAM cache; the RAM cache is always a subset of the flash cache,
    /// requiring no integrated management."
    Naive,
    /// "Based on Mercury, writes go directly from RAM to the file server
    /// instead of being routed through the flash. The flash is updated
    /// after the file server and never contains dirty data."
    Lookaside,
    /// "RAM and flash are managed together using a single LRU chain. Data
    /// blocks are placed into the least recently used buffer, whether RAM
    /// or flash, and are never migrated."
    Unified,
}

impl Architecture {
    /// All three architectures, in the paper's presentation order.
    pub const ALL: [Architecture; 3] = [
        Architecture::Naive,
        Architecture::Lookaside,
        Architecture::Unified,
    ];

    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::Naive => "naive",
            Architecture::Lookaside => "lookaside",
            Architecture::Unified => "unified",
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error parsing an architecture name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArchError(pub String);

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown architecture {:?} (expected naive, lookaside, or unified)",
            self.0
        )
    }
}

impl std::error::Error for ParseArchError {}

impl FromStr for Architecture {
    type Err = ParseArchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(Architecture::Naive),
            "lookaside" => Ok(Architecture::Lookaside),
            "unified" => Ok(Architecture::Unified),
            _ => Err(ParseArchError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_roundtrip() {
        for a in Architecture::ALL {
            assert_eq!(a.name().parse::<Architecture>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("mercury".parse::<Architecture>().is_err());
    }
}
