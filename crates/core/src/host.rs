//! Per-host simulation state.

use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

use fcache_cache::{BlockCache, UnifiedCache};
use fcache_des::Sim;
use fcache_device::IoLog;
use fcache_filer::Filer;
use fcache_net::Segment;
use fcache_types::{BlockAddr, FxHashSet, HostId};

use fcache_remote::ShardedStore;

use crate::config::SimConfig;
use crate::devsvc::DeviceService;
use crate::flush::FlushQueue;
use crate::metrics::Metrics;
use crate::robust::FaultCtx;
use crate::telemetry::TelemetryCtx;

/// This host's view of the sharded remote tier: the shared store plus one
/// private segment per shard (the host's network link to that backend).
/// Present only when [`SimConfig::remote_engaged`] — a single-shard,
/// replication-1, shard-fault-free run keeps the plain `filer`/`segment`
/// path bit-identical to the pre-remote engine (PERF.md invariant 11).
pub(crate) struct RemoteCtx {
    /// The shared sharded backend (filers, schedules, replication
    /// bookkeeping); one instance per run.
    pub store: Rc<ShardedStore>,
    /// Per-shard segments, indexed by shard. `segments[0]` is also the
    /// host's legacy `segment` handle (same `Rc`'d stats cells), so the
    /// remote aggregation must sum these — not `segment` per host.
    pub segments: Vec<Segment>,
    /// Scaled hedge delay in simulated ns (`None` disables hedging).
    pub hedge_ns: Option<u64>,
}

/// Everything one compute server ("host") owns in the simulation.
///
/// Caches live in `RefCell`s; engine code never holds a borrow across an
/// await point.
pub(crate) struct HostCtx {
    /// Host identity.
    pub id: HostId,
    /// Simulation handle.
    pub sim: Sim,
    /// Shared configuration.
    pub cfg: Rc<SimConfig>,
    /// RAM tier (naive/lookaside; capacity may be zero).
    pub ram: RefCell<BlockCache>,
    /// Flash tier (naive/lookaside; capacity may be zero).
    pub flash: RefCell<BlockCache>,
    /// Unified cache (only for [`crate::Architecture::Unified`]).
    pub unified: Option<RefCell<UnifiedCache>>,
    /// This host's private segment to the filer.
    pub segment: Segment,
    /// The shared file server.
    pub filer: Filer,
    /// Shared metrics sink.
    pub metrics: Metrics,
    /// Flash I/O log (for Figure 1 replay; usually disabled). The device
    /// service holds a clone and appends every flash access it times.
    pub iolog: IoLog,
    /// Flash device timing service: every flash read/write the engine
    /// performs is charged through it (flat Table 1 latencies by default,
    /// or the queue-aware SSD model — see `crate::devsvc`).
    pub dev: DeviceService,
    /// Blocks with an asynchronous RAM-tier flush in flight (dedupe).
    pub ram_flush_pending: RefCell<FxHashSet<u64>>,
    /// Blocks with an asynchronous flash-tier flush in flight (dedupe).
    pub flash_flush_pending: RefCell<FxHashSet<u64>>,
    /// Other hosts, for instant cache-consistency invalidation.
    pub peers: RefCell<Vec<Weak<HostCtx>>>,
    /// Set once the first measured (non-warmup) operation issues; flipping
    /// it resets all statistics.
    pub warmup_over: Rc<Cell<bool>>,
    /// Reusable `Vec<BlockAddr>` pool for per-op scratch (miss lists, hit
    /// lists) and syncer dirty-set snapshots. Once the pool has warmed up
    /// to the host's concurrency level, the simulate-one-op path performs
    /// no heap allocation (see `PERF.md`).
    pub buf_pool: RefCell<Vec<Vec<BlockAddr>>>,
    /// Asynchronous write-through flush queue, drained by a converging pool
    /// of long-lived worker daemons (see `crate::flush`): policy `a` runs
    /// allocation-free once the pool has grown to the peak concurrency.
    pub flushq: FlushQueue,
    /// Fault-injection context (resolved schedules, retry parameters,
    /// shared robustness counters). `None` — the default — means every
    /// fault-aware path collapses to its pre-fault form (see
    /// `crate::robust`).
    pub fault: Option<Rc<FaultCtx>>,
    /// Sharded remote tier (router, replicas, per-shard segments). `None`
    /// — the default — keeps the single-filer read/write paths.
    pub remote: Option<RemoteCtx>,
    /// Sim-time telemetry collector (op spans, unified windows, span
    /// stream). `None` — the default — makes every instrumentation hook a
    /// no-op, the literal pre-telemetry code path (PERF.md invariant 12).
    pub telemetry: Option<Rc<TelemetryCtx>>,
}

impl HostCtx {
    /// Takes a cleared scratch buffer from the pool (or allocates the
    /// pool's first few on a cold start).
    pub fn take_buf(&self) -> Vec<BlockAddr> {
        self.buf_pool.borrow_mut().pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool for reuse.
    pub fn put_buf(&self, mut buf: Vec<BlockAddr>) {
        buf.clear();
        self.buf_pool.borrow_mut().push(buf);
    }
    /// True if this host has a RAM cache tier.
    pub fn has_ram(&self) -> bool {
        self.cfg.ram_blocks() > 0
    }

    /// True if this host has a flash cache tier.
    pub fn has_flash(&self) -> bool {
        self.cfg.flash_blocks() > 0
    }

    /// Current cache occupancy as `(dirty blocks, cached blocks)` across
    /// whichever tiers this host's architecture uses — the telemetry
    /// window dirty-ratio sample.
    pub fn cache_occupancy(&self) -> (u64, u64) {
        if let Some(u) = &self.unified {
            let u = u.borrow();
            (u.dirty_len() as u64, u.len() as u64)
        } else {
            let ram = self.ram.borrow();
            let flash = self.flash.borrow();
            (
                (ram.dirty_len() + flash.dirty_len()) as u64,
                (ram.len() + flash.len()) as u64,
            )
        }
    }

    /// Invalidates copies of `addr` held by *other* hosts (instant, global
    /// knowledge, §3.8); returns how many hosts held a copy.
    pub fn invalidate_peers(&self, addr: BlockAddr) -> u64 {
        let mut count = 0u64;
        for peer in self.peers.borrow().iter().filter_map(Weak::upgrade) {
            let mut held = false;
            if peer.ram.borrow_mut().remove(addr).is_some() {
                held = true;
            }
            if peer.flash.borrow_mut().remove(addr).is_some() {
                held = true;
            }
            if let Some(u) = &peer.unified {
                if u.borrow_mut().remove(addr).is_some() {
                    held = true;
                }
            }
            if held {
                count += 1;
            }
        }
        count
    }

    /// Flips the warmup flag on the first measured op, resetting every
    /// statistics counter so that "statistics are not collected" for the
    /// warmup half of the trace (§4).
    pub fn maybe_end_warmup(&self) {
        if self.warmup_over.get() {
            return;
        }
        self.warmup_over.set(true);
        self.reset_stats();
        for peer in self.peers.borrow().iter().filter_map(Weak::upgrade) {
            peer.reset_stats();
        }
        self.filer.reset_stats();
        if let Some(remote) = &self.remote {
            remote.store.reset_service_stats();
        }
    }

    fn reset_stats(&self) {
        self.ram.borrow_mut().reset_stats();
        self.flash.borrow_mut().reset_stats();
        if let Some(u) = &self.unified {
            u.borrow_mut().reset_stats();
        }
        // Outside a fleet every host shares one metrics sink, so the
        // peers' resets just repeat harmlessly (the whole warmup-end
        // sequence is synchronous); in a fleet each host resets its own.
        self.metrics.reset();
        self.segment.reset_stats();
        if let Some(remote) = &self.remote {
            // Per-shard wires; segments[0] shares cells with `segment`
            // above, so its reset just repeats harmlessly.
            for seg in &remote.segments {
                seg.reset_stats();
            }
        }
        self.dev.reset_stats();
        // Robustness counters are NOT reset: like `device_windows` and
        // `degraded_time`, they cover the whole run including warmup —
        // fault handling, not steady-state latency, is what they measure.
        // (Resetting them would also tear counts for ops parked across
        // the warmup boundary: entry counted before the reset, completion
        // after, leaving ok > ops in the window tallies.)
    }
}

impl std::fmt::Debug for HostCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostCtx")
            .field("id", &self.id)
            .field("ram", &self.ram.borrow())
            .field("flash", &self.flash.borrow())
            .finish()
    }
}
