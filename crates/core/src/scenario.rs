//! The one run surface: [`Scenario`] and [`Sweep`] builders over pluggable
//! [`Workload`]s.
//!
//! Every experiment in this crate is "some configurations × some workload →
//! reports". Historically that shape was spread over loose entry points
//! ([`run_trace`], [`run_source`], [`run_sweep`](crate::run_sweep), the
//! `Workbench` helpers),
//! each hard-wiring one workload kind. This module is the composable layer
//! they all route through now:
//!
//! - a [`Workload`] names *what* to replay — a shared in-memory trace
//!   ([`Workload::trace`]), a per-job regenerated stream
//!   ([`Workload::stream`]), or a chunked `FCTRACE1` archive
//!   ([`Workload::file`]) — and every kind produces bit-identical
//!   [`SimReport`]s for the same ops (pinned by
//!   `tests/trace_streaming.rs` and `tests/sweep_determinism.rs`);
//! - a [`Scenario`] pairs one [`SimConfig`] with one workload and runs it;
//! - a [`Sweep`] fans a labeled grid of scenarios out over scoped worker
//!   threads ([`Sweep::threads`]), optionally spilling each report to an
//!   incremental sink as jobs finish ([`Sweep::on_result`]) so paper-scale
//!   sweeps never hold every report resident, and returns
//!   [`SweepResults`] that keep each job's label and configuration next to
//!   its report or error — no positional `expect` chains.
//!
//! Memory: a sweep over [`Workload::trace`] shares one resident trace
//! across all jobs (O(trace) total). A sweep over [`Workload::stream`]
//! regenerates each job's ops on the fly, so resident op memory is
//! O(chunk × concurrent jobs) no matter how large the workload volume is —
//! the "fully streamed sweep" mode.
//!
//! # Examples
//!
//! ```
//! use fcache::{Scenario, SimConfig, Sweep, Workload};
//! use fcache_fsmodel::{FsModel, FsModelConfig};
//! use fcache_trace::{TraceGenConfig, TraceStream};
//! use fcache_types::ByteSize;
//!
//! let model = FsModel::generate(FsModelConfig {
//!     total_bytes: ByteSize::mib(64),
//!     seed: 1,
//!     ..FsModelConfig::default()
//! });
//! let gen_cfg = TraceGenConfig {
//!     working_set: ByteSize::mib(4),
//!     seed: 2,
//!     ..TraceGenConfig::default()
//! };
//! let cfg = SimConfig {
//!     ram_size: ByteSize::mib(1),
//!     flash_size: ByteSize::mib(8),
//!     ..SimConfig::baseline()
//! };
//!
//! // One configuration, one streamed workload.
//! let workload = Workload::stream(|| TraceStream::new(&model, gen_cfg.clone()));
//! let report = Scenario::new(cfg.clone(), workload).run().unwrap();
//! assert!(report.metrics.read_ops > 0);
//!
//! // A labeled two-point sweep over the same streamed workload: each job
//! // regenerates its own stream, so nothing is materialized.
//! let results = Sweep::over(Workload::stream(|| TraceStream::new(&model, gen_cfg.clone())))
//!     .config("no flash", SimConfig { flash_size: ByteSize::ZERO, ..cfg.clone() })
//!     .config("8M flash", cfg)
//!     .threads(2)
//!     .run();
//! let reports = results.into_reports().unwrap();
//! assert_eq!(reports.len(), 2);
//! ```

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fcache_types::{Trace, TraceReader, TraceSource};

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::sim::{run_source, run_trace, SimError};

/// Boxed per-job source factory: called once per run/job, on the worker
/// thread that consumes the stream.
type SourceFactory<'a> = Box<dyn Fn() -> Box<dyn TraceSource + 'a> + Sync + 'a>;

/// Boxed incremental result sink (see [`Sweep::on_result`]).
type Sink<'a> = Box<dyn FnMut(SweepOutcome) + Send + 'a>;

enum WorkloadKind<'a> {
    Trace(&'a Trace),
    Stream(SourceFactory<'a>),
    File(PathBuf),
}

/// What a [`Scenario`] or [`Sweep`] replays.
///
/// All three kinds feed the same engine and produce bit-identical
/// [`SimReport`]s for the same operation sequence; they differ only in
/// where the ops live while a job runs:
///
/// | constructor | resident op memory | sharing across sweep jobs |
/// |---|---|---|
/// | [`Workload::trace`] | O(trace), once | one shared borrow, zero copies |
/// | [`Workload::stream`] | O(chunk) per job | each job regenerates its own stream |
/// | [`Workload::file`] | O(chunk) per job | each job re-reads the archive |
pub struct Workload<'a> {
    kind: WorkloadKind<'a>,
}

impl<'a> Workload<'a> {
    /// A shared, zero-copy borrow of a materialized trace. Sweep jobs
    /// replay it through per-thread cursors without copying any ops.
    pub fn trace(trace: &'a Trace) -> Self {
        Self {
            kind: WorkloadKind::Trace(trace),
        }
    }

    /// A per-job stream factory: every run calls `factory` for a fresh
    /// [`TraceSource`] and replays it in bounded chunks, so a sweep's
    /// resident op memory is O(chunk × concurrent jobs) instead of a
    /// materialized trace. Regeneration is pure CPU; the reports are
    /// bit-identical to replaying the materialized equivalent.
    ///
    /// The factory is shared by all of a sweep's worker threads, hence the
    /// `Sync` bound; the sources it returns stay on the worker that made
    /// them.
    pub fn stream<F, S>(factory: F) -> Self
    where
        F: Fn() -> S + Sync + 'a,
        S: TraceSource + 'a,
    {
        Self {
            kind: WorkloadKind::Stream(Box::new(move || Box::new(factory()))),
        }
    }

    /// Chunked replay of an archived `FCTRACE1` trace file: each run opens
    /// the file and streams it through [`TraceReader`] with O(chunk)
    /// resident memory. I/O and decode errors surface as
    /// [`SimError::Source`].
    pub fn file(path: impl Into<PathBuf>) -> Self {
        Self {
            kind: WorkloadKind::File(path.into()),
        }
    }

    /// True if runs regenerate/stream their ops instead of borrowing a
    /// resident trace (the O(chunk)-per-job kinds).
    pub fn is_streamed(&self) -> bool {
        !matches!(self.kind, WorkloadKind::Trace(_))
    }

    /// One-line description of the workload kind and its memory bound
    /// (printed by `fcsim sweep`).
    pub fn describe(&self) -> &'static str {
        match self.kind {
            WorkloadKind::Trace(_) => "materialized trace, shared zero-copy (O(trace) resident)",
            WorkloadKind::Stream(_) => "streamed, regenerated per job (O(chunk × jobs) resident)",
            WorkloadKind::File(_) => "file replay, chunked per job (O(chunk × jobs) resident)",
        }
    }

    /// Replays this workload under `cfg`.
    fn run(&self, cfg: &SimConfig) -> Result<SimReport, SimError> {
        match &self.kind {
            WorkloadKind::Trace(trace) => run_trace(cfg, trace),
            WorkloadKind::Stream(factory) => {
                let mut source = factory();
                run_source(cfg, &mut source)
            }
            WorkloadKind::File(path) => {
                let open = |e| SimError::Source(format!("{}: {e}", path.display()));
                let file = File::open(path).map_err(open)?;
                let mut reader = TraceReader::new(BufReader::new(file)).map_err(open)?;
                run_source(cfg, &mut reader)
            }
        }
    }
}

impl std::fmt::Debug for Workload<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            WorkloadKind::Trace(t) => f.debug_tuple("Workload::trace").field(&t.len()).finish(),
            WorkloadKind::Stream(_) => f.write_str("Workload::stream(..)"),
            WorkloadKind::File(p) => f.debug_tuple("Workload::file").field(p).finish(),
        }
    }
}

/// One configuration paired with one workload.
///
/// The smallest unit of the run surface: build it, [`Scenario::run`] it,
/// get a [`SimReport`]. Runs are fully deterministic and repeatable — the
/// workload kinds are interchangeable for the same ops.
#[derive(Debug)]
pub struct Scenario<'a> {
    cfg: SimConfig,
    workload: Workload<'a>,
}

impl<'a> Scenario<'a> {
    /// Pairs a configuration with a workload.
    pub fn new(cfg: SimConfig, workload: Workload<'a>) -> Self {
        Self { cfg, workload }
    }

    /// The configuration this scenario runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The workload this scenario replays.
    pub fn workload(&self) -> &Workload<'a> {
        &self.workload
    }

    /// Runs the scenario. `&self`: a scenario can run any number of times
    /// (streams regenerate, files re-open, traces re-borrow) and always
    /// produces the same report.
    pub fn run(&self) -> Result<SimReport, SimError> {
        self.workload.run(&self.cfg)
    }
}

/// One sweep job's result, handed to an [`Sweep::on_result`] sink as the
/// job finishes (completion order, serialized across workers).
#[derive(Debug)]
pub struct SweepOutcome {
    /// Job index in sweep (push) order.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// The job's report, or the error that stopped it.
    pub report: Result<SimReport, SimError>,
}

/// A sweep job failure with its job context attached.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepError {
    /// Index of the failed job in sweep order.
    pub index: usize,
    /// Label of the failed job.
    pub label: String,
    /// The underlying simulation error.
    pub error: SimError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep job {} ({}) failed: {}",
            self.index, self.label, self.error
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One job of a finished sweep: the label and configuration it ran, plus
/// its report (unless spilled to a sink) or error.
#[derive(Debug)]
pub struct SweepItem {
    /// The job's label.
    pub label: String,
    /// The configuration the job ran.
    pub config: SimConfig,
    /// The job's report. `None` if the job failed *or* if the report was
    /// delivered to an [`Sweep::on_result`] sink instead of retained.
    pub report: Option<SimReport>,
    /// The job's error, if it failed.
    pub error: Option<SimError>,
}

impl SweepItem {
    /// True if the job completed without error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Results of a [`Sweep`], in job (push) order.
#[derive(Debug)]
pub struct SweepResults {
    items: Vec<SweepItem>,
    spilled: bool,
}

impl SweepResults {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the sweep had no jobs.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if reports were streamed to an [`Sweep::on_result`] sink
    /// instead of retained in the items.
    pub fn spilled_to_sink(&self) -> bool {
        self.spilled
    }

    /// The per-job results, in job order.
    pub fn items(&self) -> &[SweepItem] {
        &self.items
    }

    /// Iterates the per-job results in job order.
    pub fn iter(&self) -> std::slice::Iter<'_, SweepItem> {
        self.items.iter()
    }

    /// The first failed job, with its index and label attached.
    pub fn first_error(&self) -> Option<SweepError> {
        self.items.iter().enumerate().find_map(|(index, item)| {
            item.error.as_ref().map(|error| SweepError {
                index,
                label: item.label.clone(),
                error: error.clone(),
            })
        })
    }

    /// Unwraps every report in job order, or the first failure with its
    /// job context ("which config failed", not a positional `expect`).
    ///
    /// # Panics
    ///
    /// Panics if the reports were spilled to an [`Sweep::on_result`] sink
    /// (they are no longer here to return).
    pub fn into_reports(self) -> Result<Vec<SimReport>, SweepError> {
        if let Some(err) = self.first_error() {
            return Err(err);
        }
        assert!(
            !self.spilled,
            "sweep reports were streamed to the on_result sink; read them there"
        );
        Ok(self
            .items
            .into_iter()
            .map(|item| item.report.expect("ok item retains its report"))
            .collect())
    }

    /// [`SweepResults::into_reports`], panicking with `what` plus the
    /// failing job's label on error (for harnesses that cannot proceed
    /// from a partial sweep, like the figure benches).
    ///
    /// # Panics
    ///
    /// Panics if any job failed, naming the job, or if the reports were
    /// spilled to a sink.
    pub fn expect_reports(self, what: &str) -> Vec<SimReport> {
        match self.into_reports() {
            Ok(reports) => reports,
            Err(e) => panic!("{what}: {e}"),
        }
    }
}

impl IntoIterator for SweepResults {
    type Item = SweepItem;
    type IntoIter = std::vec::IntoIter<SweepItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a SweepResults {
    type Item = &'a SweepItem;
    type IntoIter = std::slice::Iter<'a, SweepItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

struct JobSpec {
    label: String,
    cfg: SimConfig,
    workload: usize,
}

/// A labeled grid of scenarios, fanned out over scoped worker threads.
///
/// Build with [`Sweep::over`] (one shared workload, many configurations —
/// every paper figure) and/or [`Sweep::scenario`] (jobs with their own
/// workloads). Jobs are independent single-threaded simulations, so the
/// fan-out is bit-identical to running them serially in push order
/// (`tests/sweep_determinism.rs`); results come back in push order no
/// matter the completion order.
pub struct Sweep<'a> {
    workloads: Vec<Workload<'a>>,
    jobs: Vec<JobSpec>,
    threads: usize,
    sink: Option<Sink<'a>>,
}

impl Default for Sweep<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Sweep<'a> {
    /// An empty sweep with no shared workload; add jobs with
    /// [`Sweep::scenario`].
    pub fn new() -> Self {
        Self {
            workloads: Vec::new(),
            jobs: Vec::new(),
            threads: 0,
            sink: None,
        }
    }

    /// A sweep whose [`Sweep::config`]/[`Sweep::configs`] jobs all replay
    /// `workload`.
    pub fn over(workload: Workload<'a>) -> Self {
        let mut sweep = Self::new();
        sweep.workloads.push(workload);
        sweep
    }

    /// Adds one labeled configuration against the shared workload.
    ///
    /// # Panics
    ///
    /// Panics if the sweep was built with [`Sweep::new`] (no shared
    /// workload to run against — use [`Sweep::scenario`]).
    pub fn config(mut self, label: impl Into<String>, cfg: SimConfig) -> Self {
        assert!(
            !self.workloads.is_empty(),
            "Sweep::config needs a shared workload; build with Sweep::over"
        );
        self.jobs.push(JobSpec {
            label: label.into(),
            cfg,
            workload: 0,
        });
        self
    }

    /// Adds many configurations against the shared workload, each labeled
    /// `#<index> <arch> ram=<size> flash=<size>`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep was built with [`Sweep::new`] (see
    /// [`Sweep::config`]).
    pub fn configs(mut self, cfgs: impl IntoIterator<Item = SimConfig>) -> Self {
        for cfg in cfgs {
            let label = format!(
                "#{} {} ram={} flash={}",
                self.jobs.len(),
                cfg.arch.name(),
                cfg.ram_size,
                cfg.flash_size
            );
            self = self.config(label, cfg);
        }
        self
    }

    /// Adds a labeled job with its own workload (for grids whose jobs
    /// replay different traces — e.g. a working-set or write-ratio axis).
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario<'a>) -> Self {
        self.workloads.push(scenario.workload);
        self.jobs.push(JobSpec {
            label: label.into(),
            cfg: scenario.cfg,
            workload: self.workloads.len() - 1,
        });
        self
    }

    /// Bounds the worker-thread count; `0` (the default) uses the
    /// machine's available parallelism. `1` runs the jobs serially on the
    /// calling thread.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Streams each job's result to `sink` as the job finishes
    /// (completion order; calls are serialized across workers). With a
    /// sink attached the returned [`SweepResults`] keep only each job's
    /// label, configuration, and error status — reports are moved into the
    /// sink, so a paper-scale sweep never holds all of them resident.
    pub fn on_result(mut self, sink: impl FnMut(SweepOutcome) + Send + 'a) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job and returns the per-job results in push order.
    pub fn run(self) -> SweepResults {
        let Sweep {
            workloads,
            jobs,
            threads,
            sink,
        } = self;
        let spilled = sink.is_some();
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, jobs.len().max(1));

        // What a finished job leaves behind: its retained report (absent
        // when spilled to the sink or failed) and its error status.
        type JobOutcome = (Option<SimReport>, Option<SimError>);

        let sink = Mutex::new(sink);
        // Runs job `i` and delivers its result: the report goes to the
        // sink (moved) or into the returned slot; the error status is
        // recorded either way so `SweepResults` keeps the job context.
        let run_job = |i: usize| -> JobOutcome {
            let job = &jobs[i];
            let result = workloads[job.workload].run(&job.cfg);
            let mut guard = sink.lock().expect("sweep sink poisoned");
            if let Some(sink) = guard.as_mut() {
                let error = result.as_ref().err().cloned();
                sink(SweepOutcome {
                    index: i,
                    label: job.label.clone(),
                    report: result,
                });
                (None, error)
            } else {
                match result {
                    Ok(report) => (Some(report), None),
                    Err(error) => (None, Some(error)),
                }
            }
        };

        let mut outcomes: Vec<Option<JobOutcome>>;
        if workers <= 1 || jobs.len() <= 1 {
            outcomes = (0..jobs.len()).map(|i| Some(run_job(i))).collect();
        } else {
            // Workers pull jobs from a shared cursor (heterogeneous job
            // lengths load-balance); each result lands in its job's slot,
            // so completion order never affects output order.
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<JobOutcome>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let outcome = run_job(i);
                        *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
                    });
                }
            });
            outcomes = slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("sweep slot poisoned"))
                .collect();
        }

        let items = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let (report, error) = outcomes[i].take().unwrap_or_else(|| {
                    // Scoped workers claim slots monotonically and the
                    // scope joins them all, so an empty slot means a
                    // worker died; name the job instead of a bare unwrap.
                    panic!("sweep job {i} ({}) was never completed", job.label)
                });
                SweepItem {
                    label: job.label,
                    config: job.cfg,
                    report,
                    error,
                }
            })
            .collect();
        SweepResults { items, spilled }
    }
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("jobs", &self.jobs.len())
            .field("workloads", &self.workloads)
            .field("threads", &self.threads)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::{FileId, HostId, OpKind, ThreadId, TraceMeta, TraceOp};

    /// A tiny deterministic in-memory trace (no generator dependency).
    fn tiny_trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            hosts: 1,
            threads_per_host: 2,
            ..TraceMeta::default()
        });
        for i in 0..40u32 {
            t.ops.push(TraceOp::new(
                HostId(0),
                ThreadId((i % 2) as u16),
                if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                FileId(i % 4),
                i * 3,
                1 + i % 4,
                false,
            ));
        }
        t
    }

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            ram_size: fcache_types::ByteSize::kib(64),
            flash_size: fcache_types::ByteSize::kib(256),
            ..SimConfig::baseline()
        }
    }

    #[test]
    fn scenario_runs_all_workload_kinds_identically() {
        let trace = tiny_trace();
        let cfg = tiny_cfg();
        let want = format!(
            "{:?}",
            Scenario::new(cfg.clone(), Workload::trace(&trace))
                .run()
                .expect("trace run")
        );

        let streamed = Scenario::new(
            cfg.clone(),
            Workload::stream(|| fcache_types::SliceSource::new(&trace)),
        )
        .run()
        .expect("streamed run");
        assert_eq!(format!("{streamed:?}"), want);

        let path = std::env::temp_dir().join("fcache_scenario_unit_trace.bin");
        let mut buf = Vec::new();
        trace.encode(&mut buf).expect("encode");
        std::fs::write(&path, &buf).expect("write archive");
        let filed = Scenario::new(cfg, Workload::file(&path))
            .run()
            .expect("file run");
        let _ = std::fs::remove_file(&path);
        assert_eq!(format!("{filed:?}"), want);
    }

    #[test]
    fn scenario_is_rerunnable() {
        let trace = tiny_trace();
        let s = Scenario::new(tiny_cfg(), Workload::trace(&trace));
        let a = format!("{:?}", s.run().expect("first"));
        let b = format!("{:?}", s.run().expect("second"));
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_keeps_labels_and_order() {
        let trace = tiny_trace();
        let results = Sweep::over(Workload::trace(&trace))
            .config("small", tiny_cfg())
            .config(
                "no-flash",
                SimConfig {
                    flash_size: fcache_types::ByteSize::ZERO,
                    ..tiny_cfg()
                },
            )
            .threads(2)
            .run();
        assert_eq!(results.len(), 2);
        assert!(!results.spilled_to_sink());
        let labels: Vec<&str> = results.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, ["small", "no-flash"]);
        assert!(results
            .items()
            .iter()
            .all(|i| i.is_ok() && i.report.is_some()));
        let reports = results.into_reports().expect("all ok");
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn auto_labels_name_the_configuration() {
        let trace = tiny_trace();
        let results = Sweep::over(Workload::trace(&trace))
            .configs([tiny_cfg()])
            .run();
        let label = &results.items()[0].label;
        assert!(label.contains("#0") && label.contains("naive"), "{label}");
    }

    #[test]
    fn sink_spills_reports_incrementally() {
        let trace = tiny_trace();
        let want = format!(
            "{:?}",
            Scenario::new(tiny_cfg(), Workload::trace(&trace))
                .run()
                .expect("reference")
        );
        let outcomes = Mutex::new(Vec::new());
        let results = Sweep::over(Workload::trace(&trace))
            .config("a", tiny_cfg())
            .config("b", tiny_cfg())
            .threads(2)
            .on_result(|o| outcomes.lock().unwrap().push(o))
            .run();
        assert!(results.spilled_to_sink());
        assert!(results
            .items()
            .iter()
            .all(|i| i.report.is_none() && i.is_ok()));
        let mut outcomes = outcomes.into_inner().unwrap();
        outcomes.sort_by_key(|o| o.index);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(
                format!("{:?}", o.report.as_ref().expect("ok")),
                want,
                "sink outcome {} diverged",
                o.label
            );
        }
    }

    #[test]
    fn failed_jobs_carry_index_and_label_context() {
        let results = Sweep::over(Workload::file("/nonexistent/fcache-trace.bin"))
            .config("missing-archive", tiny_cfg())
            .run();
        assert!(!results.items()[0].is_ok());
        let err = results.first_error().expect("job failed");
        assert_eq!(err.index, 0);
        assert_eq!(err.label, "missing-archive");
        assert!(matches!(err.error, SimError::Source(_)));
        let msg = results.into_reports().unwrap_err().to_string();
        assert!(
            msg.contains("job 0") && msg.contains("missing-archive"),
            "{msg}"
        );
    }

    #[test]
    #[should_panic(expected = "needs a shared workload")]
    fn config_without_shared_workload_panics() {
        let _ = Sweep::new().config("x", tiny_cfg());
    }

    #[test]
    fn empty_sweep_returns_empty_results() {
        let results = Sweep::new().run();
        assert!(results.is_empty());
        assert_eq!(results.into_reports().expect("empty is ok").len(), 0);
    }
}
