//! The one run surface: [`Scenario`] and [`Sweep`] builders over pluggable
//! [`Workload`]s.
//!
//! Every experiment in this crate is "some configurations × some workload →
//! reports". Historically that shape was spread over loose entry points
//! ([`run_trace`], [`run_source`], [`run_sweep`](crate::run_sweep), the
//! `Workbench` helpers),
//! each hard-wiring one workload kind. This module is the composable layer
//! they all route through now:
//!
//! - a [`Workload`] names *what* to replay — a shared in-memory trace
//!   ([`Workload::trace`]), a per-job regenerated stream
//!   ([`Workload::stream`]), or a chunked `FCTRACE1` archive
//!   ([`Workload::file`]) — and every kind produces bit-identical
//!   [`SimReport`]s for the same ops (pinned by
//!   `tests/trace_streaming.rs` and `tests/sweep_determinism.rs`);
//! - a [`Scenario`] pairs one [`SimConfig`] with one workload and runs it;
//! - a [`Sweep`] fans a labeled grid of scenarios out over scoped worker
//!   threads ([`Sweep::threads`]), optionally streaming each report to a
//!   [`ResultSink`] as jobs finish ([`Sweep::sink`] — in-memory, durable
//!   JSONL, or a tee of both) so paper-scale sweeps never hold every
//!   report resident, and returns [`SweepResults`] that keep each job's
//!   label and configuration next to its report or error — no positional
//!   `expect` chains. Grids over *both* axes — configurations × workloads
//!   — build with [`Sweep::workloads`] (the Figures 8/10/11 shape), and
//!   [`Sweep::resume_from`] skips jobs already present in an existing
//!   results file, making interrupted sweeps restartable.
//!
//! Memory: a sweep over [`Workload::trace`] shares one resident trace
//! across all jobs (O(trace) total). A sweep over [`Workload::stream`]
//! regenerates each job's ops on the fly, so resident op memory is
//! O(chunk × concurrent jobs) no matter how large the workload volume is —
//! the "fully streamed sweep" mode.
//!
//! # Examples
//!
//! ```
//! use fcache::{Scenario, SimConfig, Sweep, Workload};
//! use fcache_fsmodel::{FsModel, FsModelConfig};
//! use fcache_trace::{TraceGenConfig, TraceStream};
//! use fcache_types::ByteSize;
//!
//! let model = FsModel::generate(FsModelConfig {
//!     total_bytes: ByteSize::mib(64),
//!     seed: 1,
//!     ..FsModelConfig::default()
//! });
//! let gen_cfg = TraceGenConfig {
//!     working_set: ByteSize::mib(4),
//!     seed: 2,
//!     ..TraceGenConfig::default()
//! };
//! let cfg = SimConfig {
//!     ram_size: ByteSize::mib(1),
//!     flash_size: ByteSize::mib(8),
//!     ..SimConfig::baseline()
//! };
//!
//! // One configuration, one streamed workload.
//! let workload = Workload::stream(|| TraceStream::new(&model, gen_cfg.clone()));
//! let report = Scenario::new(cfg.clone(), workload).run().unwrap();
//! assert!(report.metrics.read_ops > 0);
//!
//! // A labeled two-point sweep over the same streamed workload: each job
//! // regenerates its own stream, so nothing is materialized.
//! let results = Sweep::over(Workload::stream(|| TraceStream::new(&model, gen_cfg.clone())))
//!     .config("no flash", SimConfig { flash_size: ByteSize::ZERO, ..cfg.clone() })
//!     .config("8M flash", cfg)
//!     .threads(2)
//!     .run();
//! let reports = results.into_reports().unwrap();
//! assert_eq!(reports.len(), 2);
//! ```

use std::collections::HashSet;
use std::fs::File;
use std::io::BufReader;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fcache_types::{ByteReader, FaultPlan, Trace, TraceReader, TraceSource};

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::results::{scan_jsonl, ResultRow, ResultSink};
use crate::robust::DegradedPolicy;
use crate::sim::{run_source, run_trace, SimError};

/// Boxed per-job source factory: called once per run/job, on the worker
/// thread that consumes the stream.
type SourceFactory<'a> = Box<dyn Fn() -> Box<dyn TraceSource + 'a> + Sync + 'a>;

enum WorkloadKind<'a> {
    Trace(&'a Trace),
    Stream(SourceFactory<'a>),
    File(PathBuf),
}

/// What a [`Scenario`] or [`Sweep`] replays.
///
/// All three kinds feed the same engine and produce bit-identical
/// [`SimReport`]s for the same operation sequence; they differ only in
/// where the ops live while a job runs:
///
/// | constructor | resident op memory | sharing across sweep jobs |
/// |---|---|---|
/// | [`Workload::trace`] | O(trace), once | one shared borrow, zero copies |
/// | [`Workload::stream`] | O(chunk) per job | each job regenerates its own stream |
/// | [`Workload::file`] | O(chunk) per job | each job re-reads the archive |
pub struct Workload<'a> {
    kind: WorkloadKind<'a>,
}

impl<'a> Workload<'a> {
    /// A shared, zero-copy borrow of a materialized trace. Sweep jobs
    /// replay it through per-thread cursors without copying any ops.
    pub fn trace(trace: &'a Trace) -> Self {
        Self {
            kind: WorkloadKind::Trace(trace),
        }
    }

    /// A per-job stream factory: every run calls `factory` for a fresh
    /// [`TraceSource`] and replays it in bounded chunks, so a sweep's
    /// resident op memory is O(chunk × concurrent jobs) instead of a
    /// materialized trace. Regeneration is pure CPU; the reports are
    /// bit-identical to replaying the materialized equivalent.
    ///
    /// The factory is shared by all of a sweep's worker threads, hence the
    /// `Sync` bound; the sources it returns stay on the worker that made
    /// them.
    pub fn stream<F, S>(factory: F) -> Self
    where
        F: Fn() -> S + Sync + 'a,
        S: TraceSource + 'a,
    {
        Self {
            kind: WorkloadKind::Stream(Box::new(move || Box::new(factory()))),
        }
    }

    /// Chunked replay of an archived `FCTRACE1` trace file: each run opens
    /// the file and streams it through [`TraceReader`] with O(chunk)
    /// resident memory. I/O and decode errors surface as
    /// [`SimError::Source`].
    pub fn file(path: impl Into<PathBuf>) -> Self {
        Self {
            kind: WorkloadKind::File(path.into()),
        }
    }

    /// True if runs regenerate/stream their ops instead of borrowing a
    /// resident trace (the O(chunk)-per-job kinds).
    pub fn is_streamed(&self) -> bool {
        !matches!(self.kind, WorkloadKind::Trace(_))
    }

    /// One-line description of the workload kind and its memory bound
    /// (printed by `fcsim sweep`).
    pub fn describe(&self) -> &'static str {
        match self.kind {
            WorkloadKind::Trace(_) => "materialized trace, shared zero-copy (O(trace) resident)",
            WorkloadKind::Stream(_) => "streamed, regenerated per job (O(chunk × jobs) resident)",
            WorkloadKind::File(_) => "file replay, chunked per job (O(chunk × jobs) resident)",
        }
    }

    /// Replays this workload under `cfg`.
    fn run(&self, cfg: &SimConfig) -> Result<SimReport, SimError> {
        match &self.kind {
            WorkloadKind::Trace(trace) => run_trace(cfg, trace),
            WorkloadKind::Stream(factory) => {
                let mut source = factory();
                run_source(cfg, &mut source)
            }
            WorkloadKind::File(path) => {
                let open = |e| SimError::Source(format!("{}: {e}", path.display()));
                let file = File::open(path).map_err(open)?;
                // Zero-copy fast path: map the archive and replay through
                // per-slot cursors decoding records straight out of the
                // page cache. Any mapping failure (non-unix target, empty
                // file, resource limits) falls back to chunked buffered
                // reads — the map is strictly an optimization, and both
                // paths produce bit-identical reports (pinned by
                // `tests/trace_streaming.rs`).
                if let Ok(map) = fcache_mmap::Mmap::map(&file) {
                    let mut reader = ByteReader::new(&map).map_err(open)?;
                    return run_source(cfg, &mut reader);
                }
                let mut reader = TraceReader::new(BufReader::new(file)).map_err(open)?;
                run_source(cfg, &mut reader)
            }
        }
    }
}

impl std::fmt::Debug for Workload<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            WorkloadKind::Trace(t) => f.debug_tuple("Workload::trace").field(&t.len()).finish(),
            WorkloadKind::Stream(_) => f.write_str("Workload::stream(..)"),
            WorkloadKind::File(p) => f.debug_tuple("Workload::file").field(p).finish(),
        }
    }
}

/// One configuration paired with one workload.
///
/// The smallest unit of the run surface: build it, [`Scenario::run`] it,
/// get a [`SimReport`]. Runs are fully deterministic and repeatable — the
/// workload kinds are interchangeable for the same ops.
#[derive(Debug)]
pub struct Scenario<'a> {
    cfg: SimConfig,
    workload: Workload<'a>,
}

impl<'a> Scenario<'a> {
    /// Pairs a configuration with a workload.
    pub fn new(cfg: SimConfig, workload: Workload<'a>) -> Self {
        Self { cfg, workload }
    }

    /// The configuration this scenario runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The workload this scenario replays.
    pub fn workload(&self) -> &Workload<'a> {
        &self.workload
    }

    /// Attaches a fault-injection plan (builder style). Windows are
    /// paper-scale simulated time and scale down with the run's
    /// `time_scale`, like syncer periods:
    ///
    /// ```
    /// use fcache::{Scenario, SimConfig, Workload};
    /// use fcache_types::FaultPlan;
    /// # use fcache_trace::{generate, TraceGenConfig};
    /// # use fcache_fsmodel::{FsModel, FsModelConfig};
    /// # let model = FsModel::generate(FsModelConfig::default());
    /// # let trace = generate(&model, TraceGenConfig::default());
    /// let plan = FaultPlan::parse("filer:outage@40s-60s").unwrap();
    /// let s = Scenario::new(SimConfig::default(), Workload::trace(&trace))
    ///     .fault_plan(plan);
    /// ```
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Sets the degraded-mode policy for read misses during a filer outage
    /// (builder style; meaningful only with a fault plan).
    pub fn degraded(mut self, policy: DegradedPolicy) -> Self {
        self.cfg.robustness.degraded = policy;
        self
    }

    /// Shards the remote tier across `n` backends (builder style). With
    /// `n > 1` blocks are hash-range routed; see
    /// [`SimConfig::remote_engaged`].
    pub fn shards(mut self, n: u16) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Sets the replication factor (builder style): writes go to all live
    /// replicas, reads are served by any. Must be `1..=shards` at run time.
    pub fn replicas(mut self, n: u16) -> Self {
        self.cfg.replicas = n;
        self
    }

    /// Enables hedged reads (builder style): a read not answered within
    /// `delay` (paper-scale, divided by `time_scale`) is duplicated to a
    /// second live replica. Needs `replicas >= 2` to have any effect.
    pub fn hedge(mut self, delay: fcache_des::SimTime) -> Self {
        self.cfg.hedge = Some(delay);
        self
    }

    /// Runs the scenario. `&self`: a scenario can run any number of times
    /// (streams regenerate, files re-open, traces re-borrow) and always
    /// produces the same report.
    pub fn run(&self) -> Result<SimReport, SimError> {
        self.workload.run(&self.cfg)
    }
}

/// A sweep job failure with its job context attached.
///
/// Display output chains through the underlying [`SimError`], so a job
/// sunk by fault injection under a strict degraded policy prints the
/// originating fault clause, e.g.
/// `sweep job 3 (naive/none) failed: operation failed under injected
/// fault (filer:outage@40s-60s) with strict degraded policy`.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepError {
    /// Index of the failed job in sweep order.
    pub index: usize,
    /// Label of the failed job.
    pub label: String,
    /// The underlying simulation error.
    pub error: SimError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep job {} ({}) failed: {}",
            self.index, self.label, self.error
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One job of a finished sweep: the label and configuration it ran, plus
/// its report (unless spilled to a sink) or error.
#[derive(Debug)]
pub struct SweepItem {
    /// The job's label.
    pub label: String,
    /// The configuration the job ran.
    pub config: SimConfig,
    /// The job's report. `None` if the job failed, was skipped by
    /// [`Sweep::resume_from`], *or* if the report was delivered to a
    /// [`Sweep::sink`] instead of retained.
    pub report: Option<SimReport>,
    /// The job's error, if it failed.
    pub error: Option<SimError>,
    /// True if the job was skipped because [`Sweep::resume_from`] found
    /// its label already present in the results file.
    pub skipped: bool,
}

impl SweepItem {
    /// True if the job completed without error (skipped jobs count as ok —
    /// their report is in the resumed results file).
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Results of a [`Sweep`], in job (push) order.
#[derive(Debug)]
pub struct SweepResults {
    items: Vec<SweepItem>,
    spilled: bool,
    sink_error: Option<std::io::Error>,
}

impl SweepResults {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the sweep had no jobs.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if reports were streamed to a [`Sweep::sink`] instead of
    /// retained in the items.
    pub fn spilled_to_sink(&self) -> bool {
        self.spilled
    }

    /// The first I/O error the sink raised, if any. Simulations keep
    /// running after a sink failure (their results are still returned or
    /// reported as errors), but no further rows are delivered — a durable
    /// results file is incomplete if this is `Some`.
    pub fn sink_error(&self) -> Option<&std::io::Error> {
        self.sink_error.as_ref()
    }

    /// Number of jobs skipped by [`Sweep::resume_from`].
    pub fn skipped(&self) -> usize {
        self.items.iter().filter(|i| i.skipped).count()
    }

    /// The per-job results, in job order.
    pub fn items(&self) -> &[SweepItem] {
        &self.items
    }

    /// Iterates the per-job results in job order.
    pub fn iter(&self) -> std::slice::Iter<'_, SweepItem> {
        self.items.iter()
    }

    /// The first failed job, with its index and label attached.
    pub fn first_error(&self) -> Option<SweepError> {
        self.items.iter().enumerate().find_map(|(index, item)| {
            item.error.as_ref().map(|error| SweepError {
                index,
                label: item.label.clone(),
                error: error.clone(),
            })
        })
    }

    /// Unwraps every report in job order, or the first failure with its
    /// job context ("which config failed", not a positional `expect`).
    ///
    /// # Panics
    ///
    /// Panics if the reports were spilled to a [`Sweep::sink`] (they are
    /// no longer here to return) or skipped by [`Sweep::resume_from`]
    /// (they were never run — read the results file).
    pub fn into_reports(self) -> Result<Vec<SimReport>, SweepError> {
        if let Some(err) = self.first_error() {
            return Err(err);
        }
        assert!(
            !self.spilled,
            "sweep reports were streamed to the sink; read them there"
        );
        assert!(
            self.skipped() == 0,
            "sweep skipped resumed jobs; their reports live in the results file"
        );
        Ok(self
            .items
            .into_iter()
            .map(|item| item.report.expect("ok item retains its report"))
            .collect())
    }

    /// [`SweepResults::into_reports`], panicking with `what` plus the
    /// failing job's label on error (for harnesses that cannot proceed
    /// from a partial sweep, like the figure benches).
    ///
    /// # Panics
    ///
    /// Panics if any job failed, naming the job, or if the reports were
    /// spilled to a sink.
    pub fn expect_reports(self, what: &str) -> Vec<SimReport> {
        match self.into_reports() {
            Ok(reports) => reports,
            Err(e) => panic!("{what}: {e}"),
        }
    }
}

impl IntoIterator for SweepResults {
    type Item = SweepItem;
    type IntoIter = std::vec::IntoIter<SweepItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a SweepResults {
    type Item = &'a SweepItem;
    type IntoIter = std::slice::Iter<'a, SweepItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

struct JobSpec {
    label: String,
    cfg: SimConfig,
    workload: usize,
}

/// A labeled grid of scenarios, fanned out over scoped worker threads.
///
/// Build with [`Sweep::over`] (one shared workload, many configurations —
/// every paper figure), [`Sweep::workloads`] (a labeled *workload axis*:
/// each configuration crosses every workload, the Figures 8/10/11 grid
/// shape), and/or [`Sweep::scenario`] (jobs with their own workloads).
/// Jobs are independent single-threaded simulations, so the fan-out is
/// bit-identical to running them serially in push order
/// (`tests/sweep_determinism.rs`); results come back in push order no
/// matter the completion order. A per-job panic is caught and surfaced as
/// [`SimError::Panic`] with the job's index and label — one hostile job
/// cannot abort the sweep.
pub struct Sweep<'a> {
    workloads: Vec<Workload<'a>>,
    /// The shared workload axis: `(label, index into workloads)`. `None`
    /// labels the single axis entry of [`Sweep::over`], which keeps plain
    /// config labels ungarbled.
    axis: Vec<(Option<String>, usize)>,
    jobs: Vec<JobSpec>,
    /// Number of [`Sweep::config`]/[`Sweep::configs`] calls so far (the
    /// config-axis length; used for auto-labels and to reject workload
    /// additions after the cross product started).
    config_count: usize,
    threads: usize,
    sink: Option<&'a mut dyn ResultSink>,
    skip: HashSet<String>,
}

impl Default for Sweep<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Sweep<'a> {
    /// An empty sweep with no shared workload; add jobs with
    /// [`Sweep::scenario`] (or add a workload axis first with
    /// [`Sweep::workloads`]).
    pub fn new() -> Self {
        Self {
            workloads: Vec::new(),
            axis: Vec::new(),
            jobs: Vec::new(),
            config_count: 0,
            threads: 0,
            sink: None,
            skip: HashSet::new(),
        }
    }

    /// A sweep whose [`Sweep::config`]/[`Sweep::configs`] jobs all replay
    /// `workload`.
    pub fn over(workload: Workload<'a>) -> Self {
        let mut sweep = Self::new();
        sweep.workloads.push(workload);
        sweep.axis.push((None, 0));
        sweep
    }

    /// Adds labeled workloads to the shared axis. Every configuration
    /// added afterwards crosses the whole axis: `.workloads(W).config(c)`
    /// pushes one job per workload, labeled `<config>/<workload>` — the
    /// config × workload grid of Figures 8/10/11 in one call. Job order is
    /// config-major (all of one config's workloads, then the next
    /// config's).
    ///
    /// # Panics
    ///
    /// Panics if configurations were already added — the cross product is
    /// expanded eagerly, so the workload axis must be complete first —
    /// or if the sweep was built with [`Sweep::over`] (mixing its
    /// anonymous workload into a labeled axis would give every config a
    /// phantom unlabeled job; start from [`Sweep::new`]).
    pub fn workloads<S: Into<String>>(
        mut self,
        workloads: impl IntoIterator<Item = (S, Workload<'a>)>,
    ) -> Self {
        assert!(
            self.config_count == 0,
            "Sweep::workloads must come before config/configs (the grid is expanded eagerly)"
        );
        assert!(
            self.axis.iter().all(|(label, _)| label.is_some()),
            "Sweep::workloads cannot extend a Sweep::over axis; build with Sweep::new"
        );
        for (label, workload) in workloads {
            self.workloads.push(workload);
            self.axis
                .push((Some(label.into()), self.workloads.len() - 1));
        }
        self
    }

    /// Adds one labeled configuration: one job per workload on the shared
    /// axis (a single job for [`Sweep::over`], the full cross-product row
    /// for [`Sweep::workloads`], labeled `<config>/<workload>`).
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no shared workload axis (build with
    /// [`Sweep::over`] or [`Sweep::workloads`], or use
    /// [`Sweep::scenario`]).
    pub fn config(mut self, label: impl Into<String>, cfg: SimConfig) -> Self {
        assert!(
            !self.axis.is_empty(),
            "Sweep::config needs a shared workload; build with Sweep::over or Sweep::workloads"
        );
        let label = label.into();
        for ai in 0..self.axis.len() {
            let (wl_label, workload) = &self.axis[ai];
            let composite = match wl_label {
                None => label.clone(),
                Some(w) => format!("{label}/{w}"),
            };
            self.jobs.push(JobSpec {
                label: composite,
                cfg: cfg.clone(),
                workload: *workload,
            });
        }
        self.config_count += 1;
        self
    }

    /// Adds many configurations against the shared workload axis, each
    /// labeled `#<index> <arch> ram=<size> flash=<size>`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no shared workload axis (see
    /// [`Sweep::config`]).
    pub fn configs(mut self, cfgs: impl IntoIterator<Item = SimConfig>) -> Self {
        for cfg in cfgs {
            let label = format!(
                "#{} {} ram={} flash={}",
                self.config_count,
                cfg.arch.name(),
                cfg.ram_size,
                cfg.flash_size
            );
            self = self.config(label, cfg);
        }
        self
    }

    /// Adds a labeled job with its own workload (for grids whose jobs
    /// don't fit a rectangular config × workload product).
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario<'a>) -> Self {
        self.workloads.push(scenario.workload);
        self.jobs.push(JobSpec {
            label: label.into(),
            cfg: scenario.cfg,
            workload: self.workloads.len() - 1,
        });
        self
    }

    /// Bounds the worker-thread count; `0` (the default) uses the
    /// machine's available parallelism. `1` runs the jobs serially on the
    /// calling thread.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Streams each job's [`ResultRow`] to `sink` as the job finishes
    /// (completion order; deliveries are serialized across workers). With
    /// a sink attached the returned [`SweepResults`] keep only each job's
    /// label, configuration, and error status — reports are moved into the
    /// sink, so a paper-scale sweep never holds all of them resident.
    /// Failed jobs produce no row; their error stays in the results. The
    /// sink is borrowed, so the caller keeps it (and e.g. a
    /// [`MemorySink`](crate::MemorySink)'s rows) after the run.
    pub fn sink(mut self, sink: &'a mut dyn ResultSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Skips jobs whose labels already have rows in the JSONL results
    /// file at `path` (a missing file skips nothing), making interrupted
    /// sweeps restartable: pair with
    /// [`JsonlSink::resume`](crate::JsonlSink::resume) writing the same
    /// file and a killed 16-job sweep picks up where it stopped — the
    /// resumed file's row *set* is identical to an uninterrupted run's
    /// (pinned by `tests/results_pipeline.rs`).
    ///
    /// The scan is lenient about the torn final line a kill leaves behind
    /// (see [`scan_jsonl`]); labels must be unique across the sweep for
    /// skipping to be sound — [`Sweep::run`] asserts this whenever a skip
    /// set is present.
    ///
    /// When the same file is also being opened for appending via
    /// [`JsonlSink::resume`](crate::JsonlSink::resume), prefer feeding
    /// the labels it returns to [`Sweep::skip_labels`] — one scan instead
    /// of two.
    pub fn resume_from(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let (_, rows) = scan_jsonl(path)?;
        Ok(self.skip_labels(rows.into_iter().map(|r| r.label)))
    }

    /// Skips jobs whose labels are in `labels` (see [`Sweep::resume_from`]
    /// — this is its scan-free half, for callers that already hold the
    /// finished-row labels, e.g. from
    /// [`JsonlSink::resume`](crate::JsonlSink::resume)).
    pub fn skip_labels(mut self, labels: impl IntoIterator<Item = String>) -> Self {
        self.skip.extend(labels);
        self
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job and returns the per-job results in push order.
    pub fn run(self) -> SweepResults {
        let Sweep {
            workloads,
            axis: _,
            jobs,
            config_count: _,
            threads,
            sink,
            skip,
        } = self;
        let spilled = sink.is_some();
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, jobs.len().max(1));

        // Label-based skipping is only sound when labels identify jobs
        // uniquely; with a skip set present, a duplicate label would
        // silently skip a job that never ran.
        if !skip.is_empty() {
            let mut seen = HashSet::new();
            for job in &jobs {
                assert!(
                    seen.insert(job.label.as_str()),
                    "resume requires unique job labels; duplicate {:?}",
                    job.label
                );
            }
        }

        // What a finished job leaves behind: its retained report (absent
        // when spilled to the sink, failed, or skipped), its error status,
        // and whether it was skipped by resume.
        type JobOutcome = (Option<SimReport>, Option<SimError>, bool);

        // The sink plus the first error it raised; after an error the
        // sink reference is dropped so no further rows are delivered.
        let sink = Mutex::new((sink, None::<std::io::Error>));
        // Runs job `i` and delivers its result: the report goes to the
        // sink (moved) or into the returned slot; the error status is
        // recorded either way so `SweepResults` keeps the job context.
        let run_job = |i: usize| -> JobOutcome {
            let job = &jobs[i];
            if skip.contains(&job.label) {
                return (None, None, true);
            }
            // One panicking job must not abort the other 15: catch it and
            // surface it as this job's error, with context. The job's
            // simulator state is fully owned by the run, so unwinding
            // cannot corrupt its siblings.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                workloads[job.workload].run(&job.cfg)
            }))
            .unwrap_or_else(|payload| Err(SimError::Panic(panic_message(payload.as_ref()))));
            let mut guard = sink.lock().expect("sweep sink poisoned");
            let (sink_slot, sink_err) = &mut *guard;
            if let Some(s) = sink_slot.as_mut() {
                match result {
                    Ok(report) => {
                        let delivery = s.on_row(ResultRow {
                            index: i,
                            label: job.label.clone(),
                            config: job.cfg.clone(),
                            report,
                        });
                        if let Err(e) = delivery {
                            *sink_err = Some(e);
                            *sink_slot = None;
                        }
                        (None, None, false)
                    }
                    Err(error) => (None, Some(error), false),
                }
            } else {
                match result {
                    Ok(report) if !spilled => (Some(report), None, false),
                    // A broken sink already consumed this sweep's mandate
                    // to stream; don't silently start retaining.
                    Ok(_) => (None, None, false),
                    Err(error) => (None, Some(error), false),
                }
            }
        };

        let mut outcomes: Vec<Option<JobOutcome>>;
        if workers <= 1 || jobs.len() <= 1 {
            outcomes = (0..jobs.len()).map(|i| Some(run_job(i))).collect();
        } else {
            // Workers pull jobs from a shared cursor (heterogeneous job
            // lengths load-balance); each result lands in its job's slot,
            // so completion order never affects output order.
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<JobOutcome>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let outcome = run_job(i);
                        *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
                    });
                }
            });
            outcomes = slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("sweep slot poisoned"))
                .collect();
        }

        let (sink, mut sink_error) = sink.into_inner().expect("sweep sink poisoned");
        if let Some(s) = sink {
            if let Err(e) = s.flush() {
                sink_error.get_or_insert(e);
            }
        }

        let items = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let (report, error, skipped) = outcomes[i].take().unwrap_or_else(|| {
                    // Scoped workers claim slots monotonically and the
                    // scope joins them all, so an empty slot means a
                    // worker died; name the job instead of a bare unwrap.
                    panic!("sweep job {i} ({}) was never completed", job.label)
                });
                SweepItem {
                    label: job.label,
                    config: job.cfg,
                    report,
                    error,
                    skipped,
                }
            })
            .collect();
        SweepResults {
            items,
            spilled,
            sink_error,
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("jobs", &self.jobs.len())
            .field("workloads", &self.workloads)
            .field("threads", &self.threads)
            .field("sink", &self.sink.is_some())
            .field("skip", &self.skip.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::{FileId, HostId, OpKind, ThreadId, TraceMeta, TraceOp};

    /// A tiny deterministic in-memory trace (no generator dependency).
    fn tiny_trace() -> Trace {
        let mut t = Trace::new(TraceMeta {
            hosts: 1,
            threads_per_host: 2,
            ..TraceMeta::default()
        });
        for i in 0..40u32 {
            t.ops.push(TraceOp::new(
                HostId(0),
                ThreadId((i % 2) as u16),
                if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                FileId(i % 4),
                i * 3,
                1 + i % 4,
                false,
            ));
        }
        t
    }

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            ram_size: fcache_types::ByteSize::kib(64),
            flash_size: fcache_types::ByteSize::kib(256),
            ..SimConfig::baseline()
        }
    }

    #[test]
    fn scenario_runs_all_workload_kinds_identically() {
        let trace = tiny_trace();
        let cfg = tiny_cfg();
        let want = format!(
            "{:?}",
            Scenario::new(cfg.clone(), Workload::trace(&trace))
                .run()
                .expect("trace run")
        );

        let streamed = Scenario::new(
            cfg.clone(),
            Workload::stream(|| fcache_types::SliceSource::new(&trace)),
        )
        .run()
        .expect("streamed run");
        assert_eq!(format!("{streamed:?}"), want);

        let path = std::env::temp_dir().join("fcache_scenario_unit_trace.bin");
        let mut buf = Vec::new();
        trace.encode(&mut buf).expect("encode");
        std::fs::write(&path, &buf).expect("write archive");
        let filed = Scenario::new(cfg, Workload::file(&path))
            .run()
            .expect("file run");
        let _ = std::fs::remove_file(&path);
        assert_eq!(format!("{filed:?}"), want);
    }

    #[test]
    fn scenario_is_rerunnable() {
        let trace = tiny_trace();
        let s = Scenario::new(tiny_cfg(), Workload::trace(&trace));
        let a = format!("{:?}", s.run().expect("first"));
        let b = format!("{:?}", s.run().expect("second"));
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_keeps_labels_and_order() {
        let trace = tiny_trace();
        let results = Sweep::over(Workload::trace(&trace))
            .config("small", tiny_cfg())
            .config(
                "no-flash",
                SimConfig {
                    flash_size: fcache_types::ByteSize::ZERO,
                    ..tiny_cfg()
                },
            )
            .threads(2)
            .run();
        assert_eq!(results.len(), 2);
        assert!(!results.spilled_to_sink());
        let labels: Vec<&str> = results.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, ["small", "no-flash"]);
        assert!(results
            .items()
            .iter()
            .all(|i| i.is_ok() && i.report.is_some()));
        let reports = results.into_reports().expect("all ok");
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn auto_labels_name_the_configuration() {
        let trace = tiny_trace();
        let results = Sweep::over(Workload::trace(&trace))
            .configs([tiny_cfg()])
            .run();
        let label = &results.items()[0].label;
        assert!(label.contains("#0") && label.contains("naive"), "{label}");
    }

    #[test]
    fn sink_spills_reports_incrementally() {
        let trace = tiny_trace();
        let want = format!(
            "{:?}",
            Scenario::new(tiny_cfg(), Workload::trace(&trace))
                .run()
                .expect("reference")
        );
        let mut sink = crate::MemorySink::new();
        let results = Sweep::over(Workload::trace(&trace))
            .config("a", tiny_cfg())
            .config("b", tiny_cfg())
            .threads(2)
            .sink(&mut sink)
            .run();
        assert!(results.spilled_to_sink());
        assert!(results.sink_error().is_none());
        assert!(results
            .items()
            .iter()
            .all(|i| i.report.is_none() && i.is_ok()));
        let rows = sink.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "a");
        assert_eq!(rows[1].label, "b");
        for row in &rows {
            assert_eq!(
                format!("{:?}", row.report),
                want,
                "sink row {} diverged",
                row.label
            );
        }
    }

    #[test]
    fn workload_axis_crosses_configs_with_composite_labels() {
        let trace = tiny_trace();
        let results = Sweep::new()
            .workloads([
                ("w1", Workload::trace(&trace)),
                ("w2", Workload::trace(&trace)),
            ])
            .config("a", tiny_cfg())
            .config("b", tiny_cfg())
            .run();
        let labels: Vec<&str> = results.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, ["a/w1", "a/w2", "b/w1", "b/w2"]);
        assert!(results.items().iter().all(SweepItem::is_ok));
        // Same workload, same config: every cell of the grid agrees.
        let reports: Vec<String> = results
            .iter()
            .map(|i| format!("{:?}", i.report.as_ref().expect("ok")))
            .collect();
        assert!(reports.iter().all(|r| r == &reports[0]));
    }

    #[test]
    #[should_panic(expected = "before config")]
    fn workloads_after_configs_panics() {
        let trace = tiny_trace();
        let _ = Sweep::new()
            .workloads([("v", Workload::trace(&trace))])
            .config("a", tiny_cfg())
            .workloads([("w", Workload::trace(&trace))]);
    }

    #[test]
    #[should_panic(expected = "cannot extend a Sweep::over axis")]
    fn workloads_on_an_over_sweep_panics() {
        // Mixing over()'s anonymous workload into a labeled axis would
        // give every config a phantom unlabeled job.
        let trace = tiny_trace();
        let _ = Sweep::over(Workload::trace(&trace)).workloads([("w", Workload::trace(&trace))]);
    }

    #[test]
    fn panicking_job_becomes_an_error_not_an_abort() {
        let trace = tiny_trace();
        let results = Sweep::new()
            .scenario("good", Scenario::new(tiny_cfg(), Workload::trace(&trace)))
            .scenario(
                "hostile",
                Scenario::new(
                    tiny_cfg(),
                    Workload::stream(|| -> fcache_types::SliceSource<'_> {
                        panic!("boom in workload factory")
                    }),
                ),
            )
            .scenario(
                "also good",
                Scenario::new(tiny_cfg(), Workload::trace(&trace)),
            )
            .threads(2)
            .run();
        assert_eq!(results.len(), 3);
        assert!(results.items()[0].is_ok());
        assert!(results.items()[2].is_ok());
        let err = results.first_error().expect("hostile job failed");
        assert_eq!(err.index, 1);
        assert_eq!(err.label, "hostile");
        match &err.error {
            SimError::Panic(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn failing_sink_surfaces_io_error_and_stops_deliveries() {
        struct FailingSink {
            delivered: usize,
        }
        impl crate::ResultSink for FailingSink {
            fn on_row(&mut self, _row: crate::ResultRow) -> std::io::Result<()> {
                self.delivered += 1;
                Err(std::io::Error::other("disk full"))
            }
        }
        let trace = tiny_trace();
        let mut sink = FailingSink { delivered: 0 };
        let results = Sweep::over(Workload::trace(&trace))
            .config("a", tiny_cfg())
            .config("b", tiny_cfg())
            .threads(1)
            .sink(&mut sink)
            .run();
        let err = results.sink_error().expect("sink error surfaced");
        assert!(err.to_string().contains("disk full"));
        // The sink was dropped after the first failure; the jobs still ran
        // and report ok (the failure is the sink's, not theirs).
        assert_eq!(sink.delivered, 1);
        assert!(results.items().iter().all(SweepItem::is_ok));
    }

    #[test]
    fn failed_jobs_carry_index_and_label_context() {
        let results = Sweep::over(Workload::file("/nonexistent/fcache-trace.bin"))
            .config("missing-archive", tiny_cfg())
            .run();
        assert!(!results.items()[0].is_ok());
        let err = results.first_error().expect("job failed");
        assert_eq!(err.index, 0);
        assert_eq!(err.label, "missing-archive");
        assert!(matches!(err.error, SimError::Source(_)));
        let msg = results.into_reports().unwrap_err().to_string();
        assert!(
            msg.contains("job 0") && msg.contains("missing-archive"),
            "{msg}"
        );
    }

    #[test]
    #[should_panic(expected = "needs a shared workload")]
    fn config_without_shared_workload_panics() {
        let _ = Sweep::new().config("x", tiny_cfg());
    }

    #[test]
    fn empty_sweep_returns_empty_results() {
        let results = Sweep::new().run();
        assert!(results.is_empty());
        assert_eq!(results.into_reports().expect("empty is ok").len(), 0);
    }
}
