//! Client robustness layer: degraded-mode policy, retry/backoff
//! parameters, and the per-run fault context the engine consults.
//!
//! The paper's client cache exists to keep serving when the shared filer
//! is slow or saturated; this module is the client side of that story
//! under *injected* faults (see `fcache_types::fault`). It owns three
//! things:
//!
//! - [`RobustnessConfig`] — per-op timeout, bounded retries with
//!   exponential backoff and seeded jitter, and the [`DegradedPolicy`]
//!   governing read misses during a filer outage. All durations are
//!   simulated time (scaled by the run's `time_scale`); nothing here
//!   touches the wall clock.
//! - `FaultCtx` (crate-internal) — the per-host handle: the resolved
//!   fault set, the host's jitter RNG, and the shared `RobustnessState`
//!   counters.
//! - [`RobustnessStats`] — the frozen snapshot that lands in
//!   `SimReport::robustness`.
//!
//! Determinism: jitter draws come from a per-host `SmallRng` seeded from
//! the run seed, error draws live inside the injection seams, and the
//! whole layer is absent (no extra draws, sleeps, or tasks) when the
//! fault plan is empty — fault-free runs stay bit-identical to the
//! pre-fault engine (PERF.md invariant 10).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fcache_des::SimTime;
use fcache_types::{FaultSchedule, ResolvedFaultSet};
use rand::rngs::SmallRng;
use rand::Rng;

/// What a read miss does when the filer is down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Park the op until the outage clears, then fetch (availability
    /// first; the default). Cache hits keep serving throughout.
    #[default]
    Queue,
    /// Fail the miss immediately: the op completes without data and is
    /// counted in `failed_ops` (latency first).
    FailFast,
    /// Like [`DegradedPolicy::FailFast`], but any fault-failed op also
    /// fails the whole run with `SimError::Faulted` naming the clause
    /// (consistency first — refuse to serve degraded results).
    Strict,
}

impl DegradedPolicy {
    /// CLI/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedPolicy::Queue => "queue",
            DegradedPolicy::FailFast => "failfast",
            DegradedPolicy::Strict => "strict",
        }
    }

    /// Parses a CLI/JSON label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "queue" => Ok(DegradedPolicy::Queue),
            "failfast" => Ok(DegradedPolicy::FailFast),
            "strict" => Ok(DegradedPolicy::Strict),
            other => Err(format!(
                "unknown degraded policy \"{other}\" (queue|failfast|strict)"
            )),
        }
    }
}

/// Client-side robustness parameters. Durations are paper-scale simulated
/// time; the engine divides them by the run's `time_scale` at use, like
/// syncer periods.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustnessConfig {
    /// Retries after the first failed attempt before an op gives up.
    pub max_retries: u32,
    /// Time the client waits before declaring a failed attempt (charged
    /// per failed attempt — the op's timeout clock).
    pub op_timeout: SimTime,
    /// Base backoff delay; doubles per retry.
    pub retry_base: SimTime,
    /// Jitter fraction in `[0, 1]`: each backoff is multiplied by
    /// `1 + jitter × u` with `u` drawn from the host's seeded RNG.
    pub retry_jitter: f64,
    /// What read misses do while the filer is down.
    pub degraded: DegradedPolicy,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            op_timeout: SimTime::from_millis(50),
            retry_base: SimTime::from_millis(10),
            retry_jitter: 0.5,
            degraded: DegradedPolicy::Queue,
        }
    }
}

/// Availability accounting for one resolved fault window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultWindowStat {
    /// Window open time.
    pub start: SimTime,
    /// Window close time.
    pub end: SimTime,
    /// Filer fetches first attempted while the window was open.
    pub ops: u64,
    /// Of those, how many ultimately succeeded.
    pub ok: u64,
}

impl FaultWindowStat {
    /// Fraction of in-window fetches that succeeded (1.0 when idle).
    pub fn availability(&self) -> f64 {
        if self.ops == 0 {
            1.0
        } else {
            self.ok as f64 / self.ops as f64
        }
    }
}

/// Frozen robustness counters for a run (all zero / empty when no fault
/// plan was configured).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RobustnessStats {
    /// Retry attempts after failed exchanges.
    pub retries: u64,
    /// Failed attempts that charged the per-op timeout.
    pub timeouts: u64,
    /// Operations that exhausted their retries (or failed fast) and
    /// completed without data.
    pub failed_ops: u64,
    /// Operations parked until an outage cleared (degraded-mode queueing).
    pub queued_ops: u64,
    /// Write-through writes degraded to writeback-style buffering because
    /// the filer was down when they landed.
    pub buffered_writes: u64,
    /// Simulated time the filer was in outage within the run.
    pub degraded_time: SimTime,
    /// Outage recoveries that found buffered flushes waiting to drain.
    pub drain_events: u64,
    /// Deepest flush backlog observed at any outage recovery.
    pub drain_depth_max: u64,
    /// Total time from outage recovery to a drained flush queue.
    pub drain_time: SimTime,
    /// Per-fault-window availability (filer schedule windows, in order).
    pub windows: Vec<FaultWindowStat>,
}

impl RobustnessStats {
    /// Whether the run exercised the robustness layer at all.
    pub fn engaged(&self) -> bool {
        self.retries > 0
            || self.timeouts > 0
            || self.failed_ops > 0
            || self.queued_ops > 0
            || self.buffered_writes > 0
            || self.degraded_time > SimTime::ZERO
            || self.drain_events > 0
            || !self.windows.is_empty()
    }

    /// Fraction of the run spent with the filer in outage.
    pub fn degraded_fraction(&self, end_time: SimTime) -> f64 {
        if end_time == SimTime::ZERO {
            0.0
        } else {
            self.degraded_time.as_nanos() as f64 / end_time.as_nanos() as f64
        }
    }
}

/// Live robustness counters, shared by every host of a run (the sim is
/// single-threaded; `Cell`s follow the `DeviceStats` idiom).
pub(crate) struct RobustnessState {
    pub retries: Cell<u64>,
    pub timeouts: Cell<u64>,
    pub failed_ops: Cell<u64>,
    pub queued_ops: Cell<u64>,
    pub buffered_writes: Cell<u64>,
    pub drain_events: Cell<u64>,
    pub drain_depth_max: Cell<u64>,
    pub drain_time: Cell<u64>, // ns
    /// `(ops, ok)` per filer-schedule window.
    windows: RefCell<Vec<(u64, u64)>>,
    /// First clause whose failure stuck (for `SimError::Faulted`).
    first_fail: RefCell<Option<String>>,
}

impl RobustnessState {
    pub fn new(n_windows: usize) -> Self {
        Self {
            retries: Cell::new(0),
            timeouts: Cell::new(0),
            failed_ops: Cell::new(0),
            queued_ops: Cell::new(0),
            buffered_writes: Cell::new(0),
            drain_events: Cell::new(0),
            drain_depth_max: Cell::new(0),
            drain_time: Cell::new(0),
            windows: RefCell::new(vec![(0, 0); n_windows]),
            first_fail: RefCell::new(None),
        }
    }

    pub fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Records a fetch first attempted inside filer window `idx`.
    pub fn window_op(&self, idx: Option<usize>) {
        if let Some(i) = idx {
            self.windows.borrow_mut()[i].0 += 1;
        }
    }

    /// Records that an in-window fetch ultimately succeeded.
    pub fn window_ok(&self, idx: Option<usize>) {
        if let Some(i) = idx {
            self.windows.borrow_mut()[i].1 += 1;
        }
    }

    /// Records an op that gave up, remembering the first culprit clause.
    pub fn op_failed(&self, clause: &str) {
        Self::bump(&self.failed_ops);
        let mut first = self.first_fail.borrow_mut();
        if first.is_none() {
            *first = Some(clause.to_string());
        }
    }

    /// The clause behind the first failed op, if any op failed.
    pub fn first_fail(&self) -> Option<String> {
        self.first_fail.borrow().clone()
    }

    /// Records the flush backlog found at one outage recovery.
    pub fn note_drain(&self, depth: u64, took: SimTime) {
        Self::bump(&self.drain_events);
        self.drain_depth_max
            .set(self.drain_depth_max.get().max(depth));
        self.drain_time.set(self.drain_time.get() + took.as_nanos());
    }

    /// Freezes the counters, pairing window tallies with the filer
    /// schedule's window bounds. `degraded_time` is filled by the caller
    /// (it needs the run's end time).
    pub fn snapshot(&self, filer: &FaultSchedule) -> RobustnessStats {
        RobustnessStats {
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            failed_ops: self.failed_ops.get(),
            queued_ops: self.queued_ops.get(),
            buffered_writes: self.buffered_writes.get(),
            degraded_time: SimTime::ZERO,
            drain_events: self.drain_events.get(),
            drain_depth_max: self.drain_depth_max.get(),
            drain_time: SimTime::from_nanos(self.drain_time.get()),
            windows: self
                .windows
                .borrow()
                .iter()
                .zip(filer.windows())
                .map(|(&(ops, ok), w)| FaultWindowStat {
                    start: SimTime::from_nanos(w.start_ns),
                    end: SimTime::from_nanos(w.end_ns),
                    ops,
                    ok,
                })
                .collect(),
        }
    }
}

/// Per-host fault handle: the resolved set, this host's jitter RNG, the
/// robustness parameters (pre-scaled to run time), and the shared
/// counters. Present on `HostCtx` only when the plan is non-empty.
pub(crate) struct FaultCtx {
    pub set: Rc<ResolvedFaultSet>,
    /// Backend accounting schedule (filer plus distinct shard windows);
    /// per-window availability tallies index into *this*.
    pub acct: Rc<FaultSchedule>,
    pub cfg: RobustnessConfig,
    /// Per-op timeout, already divided by `time_scale`.
    pub op_timeout: SimTime,
    /// Backoff base, already divided by `time_scale`.
    pub retry_base: SimTime,
    pub rng: RefCell<SmallRng>,
    pub state: Rc<RobustnessState>,
}

impl FaultCtx {
    /// Backoff before retry number `attempt` (1-based): exponential in
    /// the attempt with seeded multiplicative jitter. The exponent is
    /// capped so pathological plans (an error rate of 1.0 over a long
    /// window) cannot overflow the clock.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self.retry_base.times(1u64 << exp);
        let jitter = 1.0 + self.cfg.retry_jitter * self.rng.borrow_mut().gen_range(0.0f64..1.0);
        base.scale(jitter).max(SimTime::from_nanos(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::FaultPlan;
    use rand::SeedableRng;

    #[test]
    fn degraded_policy_labels_round_trip() {
        for p in [
            DegradedPolicy::Queue,
            DegradedPolicy::FailFast,
            DegradedPolicy::Strict,
        ] {
            assert_eq!(DegradedPolicy::parse(p.label()).unwrap(), p);
        }
        assert!(DegradedPolicy::parse("shrug").is_err());
    }

    #[test]
    fn window_stats_pair_with_schedule() {
        let set = FaultPlan::parse("filer:outage@1s-2s;filer:err0.5@3s-4s")
            .unwrap()
            .resolve(0, 1);
        let st = RobustnessState::new(set.filer.windows().len());
        st.window_op(Some(0));
        st.window_op(Some(1));
        st.window_ok(Some(1));
        st.window_op(None);
        let snap = st.snapshot(&set.filer);
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].ops, 1);
        assert_eq!(snap.windows[0].ok, 0);
        assert_eq!(snap.windows[0].availability(), 0.0);
        assert_eq!(snap.windows[1].availability(), 1.0);
        assert_eq!(snap.windows[0].start, SimTime::from_secs(1));
    }

    #[test]
    fn backoff_grows_and_jitters_deterministically() {
        let set = Rc::new(FaultPlan::default().resolve(0, 1));
        let make = || FaultCtx {
            set: Rc::clone(&set),
            acct: Rc::new(FaultSchedule::default()),
            cfg: RobustnessConfig::default(),
            op_timeout: SimTime::from_millis(50),
            retry_base: SimTime::from_millis(10),
            rng: RefCell::new(SmallRng::seed_from_u64(9)),
            state: Rc::new(RobustnessState::new(0)),
        };
        let a = make();
        let b = make();
        let mut prev = SimTime::ZERO;
        for attempt in 1..=5 {
            let d = a.backoff(attempt);
            assert_eq!(d, b.backoff(attempt), "same seed, same jitter");
            assert!(d > prev, "backoff must grow: {d:?} after {prev:?}");
            // Bounded by base × 2^(attempt-1) × (1 + jitter).
            let cap = SimTime::from_millis(10)
                .times(1 << (attempt - 1))
                .scale(1.5);
            assert!(d <= cap + SimTime::from_nanos(1));
            prev = d;
        }
    }

    #[test]
    fn engaged_only_when_something_happened() {
        assert!(!RobustnessStats::default().engaged());
        let st = RobustnessStats {
            queued_ops: 1,
            ..RobustnessStats::default()
        };
        assert!(st.engaged());
        let f = RobustnessStats {
            degraded_time: SimTime::from_secs(2),
            ..RobustnessStats::default()
        };
        assert!((f.degraded_fraction(SimTime::from_secs(10)) - 0.2).abs() < 1e-12);
        assert_eq!(f.degraded_fraction(SimTime::ZERO), 0.0);
    }
}
