//! Aggregated results of one simulation run.

use core::fmt;

use fcache_cache::CacheStats;
use fcache_des::SimTime;
use fcache_device::{IoLogEntry, WindowStat};
use fcache_filer::FilerStats;
use fcache_net::SegmentStats;
use fcache_remote::RemoteStats;
use fcache_types::FleetTopology;

use crate::devsvc::DeviceStatsSnapshot;
use crate::metrics::MetricsSnapshot;
use crate::robust::RobustnessStats;
use crate::telemetry::TelemetryStats;

/// Everything measured by one simulation run (post-warmup unless noted).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Application-level latency metrics.
    pub metrics: MetricsSnapshot,
    /// RAM tier counters, summed over hosts (naive/lookaside).
    pub ram: CacheStats,
    /// Flash tier counters, summed over hosts (naive/lookaside).
    pub flash: CacheStats,
    /// Unified cache counters, summed over hosts (unified architecture).
    pub unified: CacheStats,
    /// Filer service counters.
    pub filer: FilerStats,
    /// Network counters, summed over host segments.
    pub net: SegmentStats,
    /// Flash device service counters, summed over hosts: service-time
    /// histograms and queue-depth occupancy. All zero under the default
    /// flat timing; populated when `flash_timing` is `Ssd`.
    pub device: DeviceStatsSnapshot,
    /// Per-window device latency averages (the Figure 1 series, produced
    /// by the in-engine device service). Present only when
    /// `flash_timing = Ssd` and `device_window > 0`; covers the whole run
    /// including warmup, since device fill behavior is the point.
    /// Multi-host runs append each host's series in host-id order, with
    /// `start_io` rebased so the combined sequence tiles contiguously.
    pub device_windows: Option<Vec<WindowStat>>,
    /// Simulated time at completion (includes warmup).
    pub end_time: SimTime,
    /// Executor polls performed (a proxy for simulation work).
    pub events: u64,
    /// Flash I/O log (present only when `log_flash_io` was set; covers the
    /// whole run including warmup, since device fill behavior is the point).
    pub flash_iolog: Option<Vec<IoLogEntry>>,
    /// Robustness counters under fault injection: retries, timeouts,
    /// failed/queued ops, degraded time, recovery drains, and per-window
    /// availability. All zero/empty when the run had no fault plan.
    /// Covers the whole run including warmup (like `device_windows`):
    /// fault handling, not steady-state latency, is what it measures.
    pub robustness: RobustnessStats,
    /// Sharded remote-tier counters: topology, per-shard service tallies,
    /// hedged-read and failover counts, and under-replication bookkeeping.
    /// Disengaged (all zero, `shards == 0`) when the run used the plain
    /// single-filer backend.
    pub shard: ShardStats,
    /// Sim-time telemetry: per-phase latency attribution and the unified
    /// window time series, merged across hosts. Default (disengaged) when
    /// the run collected no telemetry. Collecting it never changes any
    /// other field (PERF.md invariant 12).
    pub telemetry: TelemetryStats,
    /// Fleet section: this cell's placement in the fleet and per-host
    /// load/latency rows for fleet-level percentiles. Disengaged (empty)
    /// outside a fleet run; engaging it changes no other field
    /// (PERF.md invariant 13).
    pub fleet: FleetStats,
}

/// One host's post-warmup load and latency tallies within a fleet cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostLoadStats {
    /// Global host id (cell `host_base` + local index).
    pub host: u32,
    /// Completed read operations.
    pub read_ops: u64,
    /// Completed write operations.
    pub write_ops: u64,
    /// Sum of read operation latencies (ns).
    pub read_latency_ns: u64,
    /// Sum of write operation latencies (ns).
    pub write_latency_ns: u64,
}

impl HostLoadStats {
    /// Mean per-op read latency in microseconds.
    pub fn mean_read_us(&self) -> f64 {
        if self.read_ops == 0 {
            0.0
        } else {
            self.read_latency_ns as f64 / self.read_ops as f64 / 1000.0
        }
    }

    /// Mean per-op write latency in microseconds.
    pub fn mean_write_us(&self) -> f64 {
        if self.write_ops == 0 {
            0.0
        } else {
            self.write_latency_ns as f64 / self.write_ops as f64 / 1000.0
        }
    }
}

/// Fleet section of a [`SimReport`]: where this cell sits in the fleet
/// and what each of its hosts saw. Empty `per_host` (the default) means
/// the run was not a fleet cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// This cell's placement and network fan-in. `None` when disengaged.
    pub topology: Option<FleetTopology>,
    /// Per-host load rows, in global host-id order.
    pub per_host: Vec<HostLoadStats>,
}

impl FleetStats {
    /// True when the run was a fleet cell.
    pub fn engaged(&self) -> bool {
        self.topology.is_some()
    }

    /// Hosts in this cell.
    pub fn hosts(&self) -> usize {
        self.per_host.len()
    }

    /// p50/p95/p99 of the *per-host mean* read latency (µs) across this
    /// cell's hosts — the cross-host spread, exact by sorting (host
    /// counts are thousands, not billions). Zero-read hosts are included
    /// at 0 µs so a starved host drags the spread down visibly.
    pub fn host_read_p50_p95_p99_us(&self) -> (f64, f64, f64) {
        let mut means: Vec<f64> = self
            .per_host
            .iter()
            .map(HostLoadStats::mean_read_us)
            .collect();
        means.sort_by(f64::total_cmp);
        (
            percentile_of_sorted(&means, 50.0),
            percentile_of_sorted(&means, 95.0),
            percentile_of_sorted(&means, 99.0),
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (the same rule
/// [`crate::histogram::HistogramSnapshot::percentile`] uses on buckets).
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// One shard's service tallies plus how long its fault schedule had it in
/// outage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardServiceStats {
    /// Block reads this shard served fast.
    pub fast_reads: u64,
    /// Block reads this shard served slow.
    pub slow_reads: u64,
    /// Blocks written to this shard (including re-replication copies).
    pub writes: u64,
    /// Simulated time this shard spent in outage during the run.
    pub outage_ns: u64,
}

/// Remote-tier section of a [`SimReport`]. `shards == 0` (the default)
/// means the run never engaged the sharded backend.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Number of backend shards (0 when disengaged).
    pub shards: u16,
    /// Replication factor.
    pub replicas: u16,
    /// Scaled hedge delay in simulated ns (0 when hedging was off).
    pub hedge_ns: u64,
    /// Per-shard service tallies, indexed by shard.
    pub per_shard: Vec<ShardServiceStats>,
    /// Replication-layer counters (hedges, failovers, under-replication,
    /// recovery traffic). Covers the whole run including warmup, like
    /// `robustness`.
    pub remote: RemoteStats,
}

impl ShardStats {
    /// True when the run used the sharded remote tier.
    pub fn engaged(&self) -> bool {
        self.shards > 0
    }
}

impl SimReport {
    /// Mean per-block application read latency (µs) — the paper's primary
    /// metric.
    pub fn read_latency_us(&self) -> f64 {
        self.metrics.read_latency_us()
    }

    /// Mean per-block application write latency (µs).
    pub fn write_latency_us(&self) -> f64 {
        self.metrics.write_latency_us()
    }

    /// RAM cache hit rate over measured lookups.
    pub fn ram_hit_rate(&self) -> f64 {
        self.ram.hit_rate()
    }

    /// Flash hit rate over lookups that reached the flash tier.
    pub fn flash_hit_rate(&self) -> f64 {
        self.flash.hit_rate()
    }

    /// Flash hits as a fraction of *all* block reads (the §7.2 accounting:
    /// "the flash hit rate varies from 0 … to 47%").
    pub fn flash_hit_rate_of_all_reads(&self) -> f64 {
        let all = self.ram.lookups().max(self.flash.lookups());
        if all == 0 {
            0.0
        } else {
            self.flash.hits as f64 / all as f64
        }
    }

    /// Percentage of block writes that invalidated a copy at another host.
    pub fn invalidation_pct(&self) -> f64 {
        self.metrics.invalidation_pct()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulated time     {}", self.end_time)?;
        writeln!(
            f,
            "reads              {} ops / {} blocks, {:.1} us/block",
            self.metrics.read_ops,
            self.metrics.read_blocks,
            self.read_latency_us()
        )?;
        writeln!(
            f,
            "writes             {} ops / {} blocks, {:.1} us/block",
            self.metrics.write_ops,
            self.metrics.write_blocks,
            self.write_latency_us()
        )?;
        let (rp50, rp95, rp99) = self.metrics.read_hist.p50_p95_p99_us();
        let (wp50, wp95, wp99) = self.metrics.write_hist.p50_p95_p99_us();
        if self.metrics.read_ops > 0 {
            writeln!(
                f,
                "read p50/p95/p99   {rp50:.0} / {rp95:.0} / {rp99:.0} us (per op, bucketed)"
            )?;
        }
        if self.metrics.write_ops > 0 {
            writeln!(
                f,
                "write p50/p95/p99  {wp50:.0} / {wp95:.0} / {wp99:.0} us (per op, bucketed)"
            )?;
        }
        writeln!(
            f,
            "ram                {:.1}% hit ({} / {})",
            100.0 * self.ram_hit_rate(),
            self.ram.hits,
            self.ram.lookups()
        )?;
        writeln!(
            f,
            "flash              {:.1}% hit ({} / {})",
            100.0 * self.flash_hit_rate(),
            self.flash.hits,
            self.flash.lookups()
        )?;
        if self.unified.lookups() > 0 {
            writeln!(
                f,
                "unified            {:.1}% hit ({} / {})",
                100.0 * self.unified.hit_rate(),
                self.unified.hits,
                self.unified.lookups()
            )?;
        }
        writeln!(
            f,
            "filer              {} fast / {} slow reads, {} writes",
            self.filer.fast_reads, self.filer.slow_reads, self.filer.writes
        )?;
        writeln!(
            f,
            "network            {} packets, {} payload bytes",
            self.net.packets, self.net.payload_bytes
        )?;
        if self.net.queue_waits > 0 {
            writeln!(
                f,
                "net queueing       {} packets waited, {} total queue time",
                self.net.queue_waits, self.net.queue_wait
            )?;
        }
        if self.device.ops() > 0 {
            writeln!(
                f,
                "device             {} reads ({:.1} us avg) / {} writes ({:.1} us avg)",
                self.device.reads,
                self.device.read_avg_us(),
                self.device.writes,
                self.device.write_avg_us()
            )?;
            let (dp50, dp95, dp99) = self.device.read_hist.p50_p95_p99_us();
            writeln!(
                f,
                "device read p50/p95/p99 {dp50:.0} / {dp95:.0} / {dp99:.0} us (service time, bucketed)"
            )?;
            writeln!(
                f,
                "device queue       depth {:.2} mean / {} peak, {} waits over {} submits",
                self.device.mean_queue_depth(),
                self.device.depth_max,
                self.device.queue_waits,
                self.device.depth_samples
            )?;
        }
        if self.metrics.tracked_writes > 0 {
            writeln!(
                f,
                "invalidations      {:.1}% of {} block writes",
                self.invalidation_pct(),
                self.metrics.tracked_writes
            )?;
        }
        if self.robustness.engaged() {
            let r = &self.robustness;
            writeln!(
                f,
                "faults             {} retries, {} timeouts, {} failed / {} queued ops, {} buffered writes",
                r.retries, r.timeouts, r.failed_ops, r.queued_ops, r.buffered_writes
            )?;
            writeln!(
                f,
                "degraded           {} ({:.1}% of run)",
                r.degraded_time,
                100.0 * r.degraded_fraction(self.end_time)
            )?;
            if r.drain_events > 0 {
                writeln!(
                    f,
                    "recovery           {} drains, max depth {}, {} total drain time",
                    r.drain_events, r.drain_depth_max, r.drain_time
                )?;
            }
            for (i, w) in r.windows.iter().enumerate() {
                writeln!(
                    f,
                    "window {i}           {} - {}: {:.1}% available ({} / {} ops)",
                    w.start,
                    w.end,
                    100.0 * w.availability(),
                    w.ok,
                    w.ops
                )?;
            }
        }
        if self.shard.engaged() {
            let sh = &self.shard;
            writeln!(
                f,
                "remote tier        {} shard(s) x {} replica(s), {}",
                sh.shards,
                sh.replicas,
                if sh.hedge_ns > 0 {
                    format!("hedge after {}", SimTime::from_nanos(sh.hedge_ns))
                } else {
                    "no hedging".to_string()
                }
            )?;
            for (k, s) in sh.per_shard.iter().enumerate() {
                writeln!(
                    f,
                    "shard {k}            {} fast / {} slow reads, {} writes, {} outage",
                    s.fast_reads,
                    s.slow_reads,
                    s.writes,
                    SimTime::from_nanos(s.outage_ns)
                )?;
            }
            let r = &sh.remote;
            writeln!(
                f,
                "hedged reads       {} launched, {} won, {} cancelled, {} failovers",
                r.hedges_launched, r.hedges_won, r.hedges_cancelled, r.failovers
            )?;
            if r.under_intervals > 0 {
                writeln!(
                    f,
                    "re-replication     {} blocks / {} bytes copied; {} under-replicated interval(s), peak {}, {} open, {} exposed",
                    r.re_replicated_blocks,
                    r.re_replication_bytes,
                    r.under_intervals,
                    r.under_peak,
                    r.under_now,
                    SimTime::from_nanos(r.under_time_ns)
                )?;
            }
        }
        if let Some(topo) = &self.fleet.topology {
            writeln!(f, "fleet              {topo}")?;
            let (p50, p95, p99) = self.fleet.host_read_p50_p95_p99_us();
            writeln!(
                f,
                "fleet hosts        {} in cell, per-host mean read p50/p95/p99 {p50:.0} / {p95:.0} / {p99:.0} us",
                self.fleet.hosts()
            )?;
        }
        if self.telemetry.engaged() {
            let t = &self.telemetry;
            writeln!(
                f,
                "telemetry          {} spans, {} attributed{}",
                t.spans,
                SimTime::from_nanos(t.total_ns()),
                if t.window_ns > 0 {
                    format!(
                        ", {} window(s) x {}",
                        t.windows.len(),
                        SimTime::from_nanos(t.window_ns)
                    )
                } else {
                    String::new()
                }
            )?;
            for p in fcache_types::Phase::ALL {
                let i = p.index();
                if t.phase_ns[i] == 0 {
                    continue;
                }
                let (p50, p95, p99) = t.phase_hists[i].p50_p95_p99_us();
                writeln!(
                    f,
                    "phase {:<13}{} over {} ops ({:.1}%), p50/p95/p99 {p50:.0} / {p95:.0} / {p99:.0} us",
                    p.label(),
                    SimTime::from_nanos(t.phase_ns[i]),
                    t.phase_ops[i],
                    100.0 * t.share(p)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_nan_free() {
        let r = SimReport::default();
        assert_eq!(r.read_latency_us(), 0.0);
        assert_eq!(r.write_latency_us(), 0.0);
        assert_eq!(r.ram_hit_rate(), 0.0);
        assert_eq!(r.flash_hit_rate_of_all_reads(), 0.0);
        assert_eq!(r.invalidation_pct(), 0.0);
    }

    #[test]
    fn display_includes_key_lines() {
        let r = SimReport::default();
        let s = r.to_string();
        for needle in ["reads", "writes", "ram", "flash", "filer", "network"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(!s.contains("fleet"), "disengaged fleet prints nothing");
    }

    #[test]
    fn fleet_host_percentiles_are_nearest_rank() {
        let mut fleet = FleetStats {
            topology: Some(FleetTopology {
                cell: 0,
                cells: 1,
                host_base: 0,
                fleet_hosts: 100,
                hosts_per_segment: 4,
            }),
            per_host: Vec::new(),
        };
        assert!(fleet.engaged());
        // 100 hosts with mean read latencies 1..=100 µs: nearest-rank
        // percentiles land exactly on 50 / 95 / 99.
        for host in 0..100u32 {
            fleet.per_host.push(HostLoadStats {
                host,
                read_ops: 1,
                write_ops: 0,
                read_latency_ns: u64::from(host + 1) * 1000,
                write_latency_ns: 0,
            });
        }
        assert_eq!(fleet.host_read_p50_p95_p99_us(), (50.0, 95.0, 99.0));
        let report = SimReport {
            fleet,
            ..SimReport::default()
        };
        let s = report.to_string();
        assert!(s.contains("fleet              cell 0/1"), "{s}");
        assert!(s.contains("100 in cell"), "{s}");
    }

    #[test]
    fn empty_fleet_percentiles_are_zero() {
        let f = FleetStats::default();
        assert!(!f.engaged());
        assert_eq!(f.host_read_p50_p95_p99_us(), (0.0, 0.0, 0.0));
        assert_eq!(HostLoadStats::default().mean_read_us(), 0.0);
        assert_eq!(HostLoadStats::default().mean_write_us(), 0.0);
    }
}
