//! Tiny-RAM experiment: a miniature Figure 6/7.
//!
//! §7.5's startling result: with a large flash cache, a *minuscule* RAM
//! cache (256 KB at paper scale — just a speed-matching write buffer)
//! performs comparably to the full 8 GB, as long as the RAM writeback
//! policy is asynchronous write-through. The freed RAM can go to the
//! application instead.
//!
//! The 16 configurations (8 RAM sizes × 2 writeback policies) run as one
//! labeled `Sweep` over the shared materialized trace.
//!
//! Run with: `cargo run --release --example tiny_ram [scale]`

use fcache::{SimConfig, Sweep, Workbench, Workload, WorkloadSpec, WritebackPolicy};
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(64);
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec::baseline_60g();
    let trace = wb.make_trace(&spec);

    // Paper-scale RAM sizes from Figure 6's x-axis. At scale `s`, a paper
    // size below s×4 KB would round to zero blocks, so sizes are floored at
    // one scaled block and reported with their effective value.
    let sizes = [
        ByteSize::ZERO,
        ByteSize::kib(256),
        ByteSize::mib(1),
        ByteSize::mib(16),
        ByteSize::mib(64),
        ByteSize::mib(256),
        ByteSize::gib(1),
        ByteSize::gib(8),
    ];

    println!("60 GB working set, 64 GB flash, scale 1/{scale}");
    println!(
        "{:>10} {:>10} | {:>12} {:>13} | {:>12} {:>13}",
        "RAM", "scaled", "read(a) us", "write(a) us", "read(p1) us", "write(p1) us"
    );
    // One labeled job per (RAM size, policy): 16 configurations fanned
    // out over the shared trace in a single sweep.
    let mut sweep = Sweep::over(Workload::trace(&trace));
    for ram in sizes {
        for policy in [
            WritebackPolicy::AsyncWriteThrough,
            WritebackPolicy::Periodic(1),
        ] {
            let mut scaled_ram = ram.scaled_down(scale);
            if !ram.is_zero() && scaled_ram.blocks() == 0 {
                scaled_ram = ByteSize::bytes_exact(4096); // floor: one block
            }
            let cfg = SimConfig {
                ram_size: scaled_ram,
                ram_policy: policy,
                ..SimConfig::baseline().scaled_down(scale)
            };
            sweep = sweep.config(format!("ram={ram} {}", policy.label()), cfg);
        }
    }
    let mut results = sweep.run().expect_reports("tiny-RAM sweep").into_iter();

    for ram in sizes {
        let row: Vec<(f64, f64)> = (0..2)
            .map(|_| {
                let r = results.next().expect("one report per job");
                (r.read_latency_us(), r.write_latency_us())
            })
            .collect();
        let scaled = {
            let s = ram.scaled_down(scale);
            if !ram.is_zero() && s.blocks() == 0 {
                ByteSize::bytes_exact(4096)
            } else {
                s
            }
        };
        println!(
            "{:>10} {:>10} | {:>12.1} {:>13.2} | {:>12.1} {:>13.2}",
            ram.to_string(),
            scaled.to_string(),
            row[0].0,
            row[0].1,
            row[1].0,
            row[1].1
        );
    }
    println!("\nwith the asynchronous policy even the smallest RAM rows should sit");
    println!("close to the 8G row — the flash, not the RAM, is doing the caching.");
}
