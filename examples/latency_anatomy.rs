//! Where does a read's latency actually go? Flat vs queue-aware SSD
//! timing, dissected by the telemetry phase attribution.
//!
//! The same workload runs twice: once with the paper's flat Table 1
//! flash latencies and once with the behavioral SSD model behind its
//! bounded service queue (`--flash-timing ssd`, PR 3). The report's
//! telemetry section splits every measured op's latency across the
//! eight lifecycle phases — exactly (the phases of each span sum to its
//! latency), so the two runs' phase tables explain the SSD mode's
//! ~1.2–1.3× read-latency overhead rather than just asserting it: the
//! added time is `device_service` (locality- and fill-dependent draws
//! replacing the 88 µs constant) plus a new `flash_queue` wait whenever
//! the device saturates.
//!
//! Telemetry is engaged in-memory (`telemetry_windows`), no span file
//! needed — and engaging it changes nothing else (PERF.md invariant 12).
//!
//! Run with: `cargo run --release --example latency_anatomy [scale]`

use fcache::{FlashTiming, SimConfig, TelemetryStats, Workbench, WorkloadSpec};
use fcache_device::{SimTime, SsdConfig};
use fcache_types::Phase;

fn phase_table(t: &TelemetryStats) {
    println!(
        "  {:<15} {:>12} {:>9} {:>7} {:>9} {:>9} {:>9}",
        "phase", "total", "ops", "share", "p50 us", "p95 us", "p99 us"
    );
    for p in Phase::ALL {
        let (ns, ops) = (t.phase_ns[p.index()], t.phase_ops[p.index()]);
        if ops == 0 {
            continue;
        }
        let (p50, p95, p99) = t.phase_hists[p.index()].p50_p95_p99_us();
        println!(
            "  {:<15} {:>12} {:>9} {:>6.1}% {:>9.1} {:>9.1} {:>9.1}",
            p.label(),
            SimTime::from_nanos(ns).to_string(),
            ops,
            100.0 * t.share(p),
            p50,
            p95,
            p99,
        );
    }
}

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(512);
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec::baseline_60g();

    println!("60 GB working set, scale 1/{scale}: flat vs ssd flash timing\n");

    let mut walls = Vec::new();
    for (name, timing) in [
        ("flat", FlashTiming::Flat),
        ("ssd", FlashTiming::Ssd(SsdConfig::auto())),
    ] {
        let cfg = SimConfig {
            flash_timing: timing,
            // 10 s (paper-scale) unified windows engage telemetry without
            // writing a span file.
            telemetry_windows: Some(SimTime::from_micros(10_000_000)),
            ..SimConfig::baseline()
        };
        let report = wb
            .scenario(&cfg, &spec)
            .run()
            .unwrap_or_else(|e| panic!("{name} run: {e}"));
        let t = &report.telemetry;
        assert!(t.spans > 0, "telemetry must have recorded spans");
        println!(
            "{name}: {:.1} us/block read, {} spans, {} attributed",
            report.read_latency_us(),
            t.spans,
            SimTime::from_nanos(t.total_ns()),
        );
        phase_table(t);
        println!();
        walls.push(report.read_latency_us());
    }

    println!(
        "ssd / flat read latency: {:.2}x — the extra time is the phases\n\
         only the ssd run has: device_service draws above the flat 88 us\n\
         constant, plus flash_queue waits when the device saturates.",
        walls[1] / walls[0].max(1e-9),
    );
}
