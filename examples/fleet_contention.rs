//! Shared-wire contention: how network fan-in moves the fleet's tail.
//!
//! The paper's client cache exists to keep traffic *off* the network and
//! the filer (§1). This example measures the inverse: keep the workload
//! fixed and squeeze more hosts onto each half-duplex uplink. Every
//! packet a host sends now queues behind its neighbors' packets, so mean
//! latency drifts up a little while the p99 — the operations stuck at the
//! back of a busy wire — climbs much faster. Fleet percentiles come from
//! the exact bucket-wise merge of every cell's latency histogram, which
//! is what makes tail movement visible at all: a per-cell average would
//! smear the queuing spikes away.
//!
//! Run with: `cargo run --release --example fleet_contention [scale]`

use fcache::{SimConfig, WorkloadSpec};
use fcache_fleet::{Fleet, FleetSpec};
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(4096);

    println!("240 hosts in cells of 48, shared working set, scale 1/{scale}");
    println!("sweeping hosts per uplink: every host sends the same traffic;");
    println!("only the wire sharing changes.\n");
    println!(
        "{:>7} | {:>9} {:>9} {:>9} {:>10} {:>14} {:>13}",
        "fan-in", "p50 op", "p95 op", "p99 op", "host p99", "pkts queued", "queue ms"
    );
    for fanin in [1u16, 4, 8, 16] {
        let spec = FleetSpec {
            hosts: 240,
            cell_hosts: 48,
            hosts_per_segment: fanin,
            workload: WorkloadSpec {
                working_set: ByteSize::gib(40),
                seed: 13,
                ..WorkloadSpec::default()
            },
            scale,
        };
        // Small flash keeps real read misses flowing over the wire — an
        // all-hits fleet would have nothing to queue.
        let cfg = SimConfig {
            flash_size: ByteSize::gib(8),
            ..SimConfig::baseline()
        };
        let summary = Fleet::new(cfg, spec).run().expect("fleet run").summary();
        let p = |pct: f64| summary.read_op_percentile_us(pct).unwrap_or(0.0);
        println!(
            "{:>7} | {:>9.0} {:>9.0} {:>9.0} {:>10.0} {:>14} {:>13.1}",
            fanin,
            p(50.0),
            p(95.0),
            p(99.0),
            summary.host_read_us.2,
            summary.queue_waits,
            summary.queue_wait_ns as f64 / 1e6,
        );
    }
    println!();
    println!("fan-in 1 is the dedicated-wire baseline (a host only ever queues");
    println!("behind itself). as more hosts share each uplink the total queue");
    println!("time grows superlinearly and the whole latency distribution slides");
    println!("right — the wire, not the cache, ends up setting the fleet's tail.");
    println!("this is the fleet-level argument for client flash — every absorbed");
    println!("read is a packet that never contends for the shared wire.");
}
