//! Persistence experiment: a miniature Figure 10.
//!
//! §7.8: a persistent (recoverable) flash cache costs a second flash write
//! per block for metadata — invisible to the application — but saves the
//! cold-start penalty after a crash. The *not warmed* runs drop the warmup
//! half of the trace, "equivalent to having a non-persistent flash cache
//! and crashing at the start of the simulator run".
//!
//! Each working-set row is a two-job `Sweep` whose jobs replay *different*
//! workloads (the crash run drops the warmup half), so they go in as
//! per-job scenarios over streamed workloads — nothing is materialized.
//!
//! Run with: `cargo run --release --example persistence_crash [scale]`

use fcache::{SimConfig, Sweep, Workbench, WorkloadSpec};
use fcache_device::FlashModel;
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(512);
    let wb = Workbench::new(scale, 42);

    println!("64 GB flash, 8 GB RAM, naive architecture, scale 1/{scale}\n");
    println!(
        "{:>8} | {:>22} {:>22} {:>18}",
        "WS", "warmed (persistent)", "not warmed (crash)", "cold-start penalty"
    );
    for ws_gib in [20u64, 40, 60, 80, 120] {
        let base = WorkloadSpec {
            working_set: ByteSize::gib(ws_gib),
            seed: ws_gib,
            ..WorkloadSpec::default()
        };

        // Warmed + persistent: metadata writes double the flash write
        // cost. Not warmed: cold caches see the measured half directly.
        let persistent_cfg = SimConfig {
            flash_model: FlashModel::default().with_persistence(true),
            ..SimConfig::baseline()
        };
        let crash_spec = WorkloadSpec {
            skip_warmup: true,
            ..base.clone()
        };
        let mut reports = Sweep::new()
            .scenario("warmed persistent", wb.scenario(&persistent_cfg, &base))
            .scenario(
                "crash not-warmed",
                wb.scenario(&SimConfig::baseline(), &crash_spec),
            )
            .run()
            .expect_reports("persistence sweep")
            .into_iter();
        let warmed = reports.next().expect("warmed report");
        let cold = reports.next().expect("cold report");

        let penalty =
            100.0 * (cold.read_latency_us() - warmed.read_latency_us()) / warmed.read_latency_us();
        println!(
            "{:>7}G | {:>18.1} us {:>18.1} us {:>17.1}%",
            ws_gib,
            warmed.read_latency_us(),
            cold.read_latency_us(),
            penalty
        );
    }
    println!("\nthe warmed runs pay doubled flash-write latency for recoverability —");
    println!("and it is invisible. the not-warmed runs show what a crash costs");
    println!("without persistence: the cache refills at file-server speed.");
}
