//! Durable, resumable sweeps: the structured results pipeline end to end.
//!
//! Runs a 12-job config × workload grid twice:
//!
//! 1. straight through, streaming every finished job to a JSONL results
//!    file (one schema-versioned row per line, flushed per row);
//! 2. simulating a crash — the file is truncated to a few complete rows
//!    plus a torn half-line — and resumed: finished jobs are skipped,
//!    the torn tail is dropped, and only the missing jobs run.
//!
//! The resumed file's row set is identical to the uninterrupted run's.
//! Inspect either with `fcsim report <file>`.
//!
//! Run with: `cargo run --release --example durable_sweep`

use fcache::{read_rows, JsonlSink, SimConfig, Sweep, Workbench, WorkloadSpec};
use fcache_types::ByteSize;

/// The 3-workload × 4-config grid both passes run: `Sweep::workloads`
/// sets the workload axis, each `.config` crosses it (composite labels).
fn grid<'a>(wb: &'a Workbench, specs: &'a [WorkloadSpec]) -> Sweep<'a> {
    let mut sweep = Sweep::new().workloads(wb.workloads(specs));
    for (label, flash) in [
        ("noflash", ByteSize::ZERO),
        ("8G", ByteSize::gib(8)),
        ("16G", ByteSize::gib(16)),
        ("32G", ByteSize::gib(32)),
    ] {
        sweep = sweep.config(
            label,
            SimConfig {
                flash_size: flash,
                ..SimConfig::baseline()
            }
            .scaled_down(wb.scale()),
        );
    }
    sweep
}

fn main() {
    let scale = 16384; // tiny scale so the example runs in seconds
    let wb = Workbench::new(scale, 42);
    let path = std::env::temp_dir().join("durable_sweep_results.jsonl");

    let specs: Vec<WorkloadSpec> = [0.1f64, 0.3, 0.5]
        .into_iter()
        .map(|wf| WorkloadSpec {
            working_set: ByteSize::gib(16),
            write_fraction: wf,
            seed: 7 + (wf * 10.0) as u64,
            ..WorkloadSpec::default()
        })
        .collect();

    // Pass 1: the uninterrupted run.
    let mut sink = JsonlSink::create(&path).expect("create results file");
    let results = grid(&wb, &specs).sink(&mut sink).run();
    assert!(results.first_error().is_none() && results.sink_error().is_none());
    drop(sink);
    let full = std::fs::read_to_string(&path).expect("read");
    println!(
        "full run: {} jobs -> {} rows in {}",
        results.len(),
        full.lines().count(),
        path.display()
    );

    // Simulate a kill: keep 4 complete rows and half of the fifth line.
    let lines: Vec<&str> = full.lines().collect();
    let torn = lines[4];
    let partial = lines[..4]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        + &torn[..torn.len() / 2];
    std::fs::write(&path, partial).expect("truncate");
    println!("simulated crash: 4 complete rows + a torn fifth line");

    // Pass 2: resume. JsonlSink::resume drops the torn tail and appends;
    // Sweep::resume_from skips the labels already present.
    let (mut sink, seen) = JsonlSink::resume(&path).expect("resume results file");
    let results = grid(&wb, &specs)
        .resume_from(&path)
        .expect("scan results file")
        .sink(&mut sink)
        .run();
    assert!(results.first_error().is_none() && results.sink_error().is_none());
    drop(sink);
    println!(
        "resumed: {} rows kept, {} jobs skipped, {} run",
        seen.len(),
        results.skipped(),
        results.len() - results.skipped()
    );

    // The row *set* matches the uninterrupted run exactly (order differs:
    // surviving rows keep their place, new rows append in completion
    // order).
    let resumed = std::fs::read_to_string(&path).expect("read");
    let mut a: Vec<&str> = full.lines().collect();
    let mut b: Vec<&str> = resumed.lines().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "resumed row set must match the uninterrupted run");
    println!("row sets identical ✓");

    // Rows decode back to exact reports — print the grid from the file.
    let mut rows = read_rows(&path).expect("decode");
    rows.sort_by_key(|r| r.index);
    println!("\n{:>22}  {:>9}  {:>7}", "label", "read_us", "flash%");
    for row in &rows {
        println!(
            "{:>22}  {:>9.1}  {:>7.1}",
            row.label,
            row.report.read_latency_us(),
            100.0 * row.report.flash_hit_rate_of_all_reads()
        );
    }
    let _ = std::fs::remove_file(&path);
}
