//! Render farm: the paper's motivating multi-host scenario, at fleet scale.
//!
//! §1 motivates client-side flash with "compute servers in data centers,
//! render farms used in animation, and compute nodes in scientific
//! computation clusters". A render farm is the friendly case for flash
//! caching: many hosts, mostly-read traffic (scene data, textures), and
//! mostly *private* working sets per host — so big client caches pay off
//! without the §7.9 consistency penalty.
//!
//! This example runs a 400-host farm through the [`Fleet`] API — cells of
//! 50 hosts against a shared filer, four hosts per network uplink — with
//! and without per-host flash, at two write ratios (5 % ≈ render outputs;
//! 30 % = the paper baseline). The fleet summary merges every cell's
//! latency histogram, so the p50/p95 columns are true fleet-wide
//! operation percentiles, not averages of averages.
//!
//! Run with: `cargo run --release --example render_farm [scale]`

use fcache::{SimConfig, WorkloadSpec};
use fcache_fleet::{Fleet, FleetSpec};
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(4096);

    println!("400 render hosts (cells of 50, 4 hosts per uplink), scale 1/{scale}\n");
    println!(
        "{:>8} {:>9} | {:>12} {:>9} {:>9} {:>10} {:>11}",
        "writes", "flash", "read us/blk", "p50 op", "p95 op", "host p95", "net queued"
    );
    for write_pct in [5u32, 30] {
        for flash in [ByteSize::ZERO, ByteSize::gib(64)] {
            let spec = FleetSpec {
                hosts: 400,
                cell_hosts: 50,
                hosts_per_segment: 4,
                workload: WorkloadSpec {
                    working_set: ByteSize::gib(40),
                    write_fraction: f64::from(write_pct) / 100.0,
                    ws_count: 50, // private per-host scenes within each cell
                    seed: 7_000 + u64::from(write_pct),
                    ..WorkloadSpec::default()
                },
                scale,
            };
            let cfg = SimConfig {
                flash_size: flash,
                ..SimConfig::baseline()
            };
            // One deterministic DES job per cell; the summary is the exact
            // histogram merge across all eight cells.
            let summary = Fleet::new(cfg, spec).run().expect("fleet run").summary();
            let mean_read_us = summary.metrics.read_latency.as_micros_f64()
                / summary.metrics.read_blocks.max(1) as f64;
            println!(
                "{:>7}% {:>9} | {:>12.1} {:>9.0} {:>9.0} {:>10.0} {:>11}",
                write_pct,
                flash.to_string(),
                mean_read_us,
                summary.read_op_percentile_us(50.0).unwrap_or(0.0),
                summary.read_op_percentile_us(95.0).unwrap_or(0.0),
                summary.host_read_us.1,
                summary.queue_waits,
            );
        }
        println!();
    }
    println!("per-host flash multiplies the farm's effective cache: mean reads drop");
    println!("~3x and the p50/p95 read-op latencies fall out of the filer-miss range.");
    println!("the 'host p95' column ranks hosts by their own mean read latency —");
    println!("with private scenes the spread across 400 hosts stays tight, and the");
    println!("shared uplinks (net queued column) add waits without reordering the");
    println!("comparison. see fleet_contention for what happens when they saturate.");
}
