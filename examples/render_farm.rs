//! Render farm: the paper's motivating multi-host scenario.
//!
//! §1 motivates client-side flash with "compute servers in data centers,
//! render farms used in animation, and compute nodes in scientific
//! computation clusters". A render farm is the friendly case for flash
//! caching: many hosts, mostly-read traffic (scene data, textures), and
//! mostly *private* working sets per host — so big client caches pay off
//! without the §7.9 consistency penalty.
//!
//! This example compares a 4-host farm with and without per-host flash,
//! at two write ratios (5 % ≈ render outputs; 30 % = the paper baseline).
//!
//! Run with: `cargo run --release --example render_farm [scale]`

use fcache::{SimConfig, Workbench, WorkloadSpec};
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(1024);
    let wb = Workbench::new(scale, 42);

    println!("4 render hosts, private 40 GB working sets each, scale 1/{scale}\n");
    println!(
        "{:>8} {:>9} | {:>12} {:>13} {:>9} {:>9} {:>9}",
        "writes", "flash", "read us/blk", "write us/blk", "p50 op", "p95 op", "inval %"
    );
    for write_pct in [5u32, 30] {
        for flash in [ByteSize::ZERO, ByteSize::gib(64)] {
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(40),
                write_fraction: f64::from(write_pct) / 100.0,
                hosts: 4,
                ws_count: 4, // private per-host scenes
                seed: 7_000 + u64::from(write_pct),
                ..WorkloadSpec::default()
            };
            let cfg = SimConfig {
                flash_size: flash,
                ..SimConfig::baseline()
            };
            // One scenario per cell: streamed generation, nothing resident.
            let report = wb.scenario(&cfg, &spec).run().expect("run");
            let (p50, p95, _) = report.metrics.read_hist.p50_p95_p99_us();
            println!(
                "{:>7}% {:>9} | {:>12.1} {:>13.2} {:>9.0} {:>9.0} {:>9.1}",
                write_pct,
                flash.to_string(),
                report.read_latency_us(),
                report.write_latency_us(),
                p50,
                p95,
                report.invalidation_pct()
            );
        }
        println!();
    }
    println!("per-host flash multiplies the farm's effective cache: mean reads drop");
    println!("~3x and the p50/p95 read-op latencies fall out of the filer-miss range.");
    println!("invalidations stay moderate — they come from the popular files all");
    println!("hosts share (the 20% whole-server traffic), not the private scenes;");
    println!("compare the shared_consistency example for the worst case.");
}
