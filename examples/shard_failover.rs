//! Sharded remote tier: replication factors 1–3 through a mid-run shard
//! outage.
//!
//! The filer is sharded four ways; shard 1 dies for 20 s mid-run. At
//! replication 1 the dead shard's blocks have nowhere else to live:
//! reads park until recovery (queue policy). At replication 2 and 3
//! reads fail over to a surviving replica and writes are acknowledged by
//! the live replicas — the outage costs almost nothing, and the recovery
//! pass re-replicates the under-replicated blocks once the shard
//! returns. A final run adds hedged reads, racing a second replica when
//! the first is slow.
//!
//! Run with: `cargo run --release --example shard_failover [scale]`

use fcache::{SimConfig, Workbench, WorkloadSpec};
use fcache_device::SimTime;
use fcache_types::{ByteSize, FaultPlan};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(512);
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(60),
        ..WorkloadSpec::default()
    };
    // Paper-scale clause: the window divides by the time scale with the
    // rest of the run, so the outage lands mid-run at any scale.
    let plan = FaultPlan::parse("shard1:outage@40s-60s").expect("spec");

    println!("60 GB working set, 4 shards, 20 s shard-1 outage at t=40 s, scale 1/{scale}\n");
    println!(
        "{:>9} | {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>7}",
        "replicas", "read us", "write us", "queued", "failed", "failover", "re-repl", "healed"
    );

    for replicas in 1u16..=3 {
        let report = wb
            .scenario(&SimConfig::baseline(), &spec)
            .shards(4)
            .replicas(replicas)
            .fault_plan(plan.clone())
            .run()
            .expect("faulted sharded run");
        let rs = &report.robustness;
        let rem = &report.shard.remote;
        println!(
            "{:>9} | {:>9.1} {:>9.2} {:>7} {:>7} {:>9} {:>9} {:>7}",
            replicas,
            report.read_latency_us(),
            report.write_latency_us(),
            rs.queued_ops,
            rs.failed_ops,
            rem.failovers,
            rem.re_replicated_blocks,
            if rem.under_now == 0 { "yes" } else { "no" },
        );
    }

    // Hedged reads on top of replication 2: race a second replica when
    // the first is silent for 500 µs. The hedge also masks the outage —
    // a dead primary simply loses the race.
    let hedged = wb
        .scenario(&SimConfig::baseline(), &spec)
        .shards(4)
        .replicas(2)
        .hedge(SimTime::from_micros(500))
        .fault_plan(plan)
        .run()
        .expect("hedged run");
    let rem = &hedged.shard.remote;
    println!(
        "\nhedged (R=2, 500 us): read {:.1} us/block, {} hedges launched, {} won, {} cancelled",
        hedged.read_latency_us(),
        rem.hedges_launched,
        rem.hedges_won,
        rem.hedges_cancelled,
    );
}
