//! Policy explorer: a miniature Figure 2.
//!
//! Sweeps all 49 RAM × flash writeback-policy combinations for a chosen
//! architecture and prints the read/write latency surfaces. The paper's
//! key result should be visible directly in the grid: every combination
//! that avoids synchronous writes to the filer (`s` rows/columns and the
//! all-dirty `n`/`n` corner) performs essentially identically.
//!
//! Run with: `cargo run --release --example policy_explorer [arch] [scale]`

use fcache::{Architecture, SimConfig, Workbench, WorkloadSpec, WritebackPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let arch: Architecture = args
        .next()
        .map(|a| a.parse().expect("naive|lookaside|unified"))
        .unwrap_or(Architecture::Naive);
    let scale: u64 = args
        .next()
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(1024);

    println!("architecture: {arch}; scale 1/{scale}; 80 GB working set\n");
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec::baseline_80g();
    let trace = wb.make_trace(&spec);

    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for ram_policy in WritebackPolicy::ALL {
        let mut rrow = Vec::new();
        let mut wrow = Vec::new();
        for flash_policy in WritebackPolicy::ALL {
            let cfg = SimConfig {
                arch,
                ram_policy,
                flash_policy,
                ..SimConfig::baseline()
            };
            let r = wb.run_with_trace(&cfg, &trace).expect("run");
            rrow.push(r.read_latency_us());
            wrow.push(r.write_latency_us());
        }
        reads.push(rrow);
        writes.push(wrow);
        eprint!(".");
    }
    eprintln!();

    for (name, grid) in [("READ", &reads), ("WRITE", &writes)] {
        println!("{name} latency (us/block); rows = RAM policy, cols = flash policy");
        print!("{:>6}", "");
        for p in WritebackPolicy::ALL {
            print!("{:>9}", p.label());
        }
        println!();
        for (i, p) in WritebackPolicy::ALL.iter().enumerate() {
            print!("{:>6}", p.label());
            for v in &grid[i] {
                print!("{v:>9.1}");
            }
            println!();
        }
        println!();
    }

    println!("note the flat interior (policy does not matter) and the elevated");
    println!("write-latency ridge along the synchronous row/column and the n/n corner.");
}
