//! Policy explorer: a miniature Figure 2.
//!
//! Sweeps all 49 RAM × flash writeback-policy combinations for a chosen
//! architecture and prints the read/write latency surfaces. The paper's
//! key result should be visible directly in the grid: every combination
//! that avoids synchronous writes to the filer (`s` rows/columns and the
//! all-dirty `n`/`n` corner) performs essentially identically.
//!
//! The 49 configurations are one labeled `Sweep` over a shared
//! materialized trace: every job replays the same borrowed ops (zero
//! copies) and the grid fans out across worker threads.
//!
//! Run with: `cargo run --release --example policy_explorer [arch] [scale]`

use fcache::{Architecture, SimConfig, Sweep, Workbench, Workload, WorkloadSpec, WritebackPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let arch: Architecture = args
        .next()
        .map(|a| a.parse().expect("naive|lookaside|unified"))
        .unwrap_or(Architecture::Naive);
    let scale: u64 = args
        .next()
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(1024);

    println!("architecture: {arch}; scale 1/{scale}; 80 GB working set\n");
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec::baseline_80g();
    let trace = wb.make_trace(&spec);

    let mut sweep = Sweep::over(Workload::trace(&trace));
    for ram_policy in WritebackPolicy::ALL {
        for flash_policy in WritebackPolicy::ALL {
            let cfg = SimConfig {
                arch,
                ram_policy,
                flash_policy,
                ..SimConfig::baseline()
            }
            .scaled_down(scale);
            sweep = sweep.config(
                format!("ram={} flash={}", ram_policy.label(), flash_policy.label()),
                cfg,
            );
        }
    }
    let results = sweep.run().expect_reports("policy surface");

    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for row in results.chunks(WritebackPolicy::ALL.len()) {
        reads.push(row.iter().map(|r| r.read_latency_us()).collect::<Vec<_>>());
        writes.push(row.iter().map(|r| r.write_latency_us()).collect::<Vec<_>>());
    }

    for (name, grid) in [("READ", &reads), ("WRITE", &writes)] {
        println!("{name} latency (us/block); rows = RAM policy, cols = flash policy");
        print!("{:>6}", "");
        for p in WritebackPolicy::ALL {
            print!("{:>9}", p.label());
        }
        println!();
        for (i, p) in WritebackPolicy::ALL.iter().enumerate() {
            print!("{:>6}", p.label());
            for v in &grid[i] {
                print!("{v:>9.1}");
            }
            println!();
        }
        println!();
    }

    println!("note the flat interior (policy does not matter) and the elevated");
    println!("write-latency ridge along the synchronous row/column and the n/n corner.");
}
