//! Cache-consistency probe: a miniature Figure 11.
//!
//! Two hosts share one working set (the paper's worst case, §7.9). Every
//! write at one host instantly invalidates any copy at the other; the
//! simulator counts the fraction of application block writes that required
//! an invalidation. With a 64 GB flash the shared working set stays
//! resident at *both* hosts, so the invalidation rate is far higher than
//! with RAM-only caches — the paper's warning about consistency pressure.
//!
//! Run with: `cargo run --release --example shared_consistency [scale]`

use fcache::{SimConfig, Workbench, WorkloadSpec};
use fcache_types::ByteSize;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(512);
    let wb = Workbench::new(scale, 42);

    println!("two hosts, one shared 60 GB working set, scale 1/{scale}\n");
    println!(
        "{:>9} {:>10} | {:>14} {:>14} {:>12}",
        "flash", "write %", "inval. writes", "read us/blk", "write us/blk"
    );
    for flash in [ByteSize::ZERO, ByteSize::gib(64)] {
        for write_pct in [10u32, 30, 50, 70, 90] {
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(60),
                write_fraction: f64::from(write_pct) / 100.0,
                hosts: 2,
                ws_count: 1,
                ..WorkloadSpec::default()
            };
            let cfg = SimConfig {
                flash_size: flash,
                ..SimConfig::baseline()
            };
            // One scenario per cell: streamed generation, nothing resident.
            let r = wb.scenario(&cfg, &spec).run().expect("run");
            println!(
                "{:>9} {:>9}% | {:>13.1}% {:>14.1} {:>12.2}",
                flash.to_string(),
                write_pct,
                r.invalidation_pct(),
                r.read_latency_us(),
                r.write_latency_us()
            );
        }
        println!();
    }
    println!("the flash rows should show a much higher invalidation percentage:");
    println!("big caches keep shared blocks resident everywhere, so writes keep");
    println!("invalidating them — the scalability concern the paper raises.");
}
