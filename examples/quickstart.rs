//! Quickstart: run the paper's baseline experiment at laptop scale.
//!
//! Builds the 1.4 TB Impressions-style file-server model at 1/256 scale,
//! then runs the 60 GB and 80 GB baseline workloads (30 % writes, eight
//! threads) through the naive architecture with 8 GB RAM and 64 GB flash —
//! the configuration §7.1 of the paper settles on (one-second periodic RAM
//! writeback, asynchronous write-through flash).
//!
//! Each experiment is one `Scenario`: a configuration paired with a
//! workload. `Workbench::scenario` builds it from paper-scale quantities
//! (scaling the sizes internally) over a *streamed* workload, so the trace
//! is generated in bounded chunks and never materialized.
//!
//! Run with: `cargo run --release --example quickstart`

use fcache::{SimConfig, Workbench, WorkloadSpec};

fn main() {
    let scale = 256;
    println!("building 1.4 TB file-server model at 1/{scale} scale...");
    let wb = Workbench::new(scale, 42);
    println!(
        "  {} files, {} bytes total\n",
        wb.model().file_count(),
        wb.model().total_bytes()
    );

    let cfg = SimConfig::baseline();
    println!("timing model (Table 1):\n{}", cfg.timing_table());

    for spec in [WorkloadSpec::baseline_60g(), WorkloadSpec::baseline_80g()] {
        println!(
            "running {} working set, {:.0}% writes ...",
            spec.working_set,
            spec.write_fraction * 100.0
        );
        let report = wb.scenario(&cfg, &spec).run().expect("simulation runs");
        println!("{report}");
        println!(
            "  -> application read latency  {:>8.1} us/block",
            report.read_latency_us()
        );
        println!(
            "  -> application write latency {:>8.2} us/block\n",
            report.write_latency_us()
        );
    }

    println!("(writes sit at RAM speed: the flash cache absorbs them, exactly");
    println!(" the paper's headline result that write-through flash is enough.)");
}
