//! Fault injection: a mid-run filer outage under each degraded policy.
//!
//! The client robustness layer keeps cache hits flowing during an outage;
//! what happens to *misses* and write-through traffic is the
//! `DegradedPolicy` choice: `queue` parks them until the filer returns
//! (availability first), `failfast` fails them immediately (latency
//! first), `strict` turns the first casualty into a run error. Writes are
//! never dropped — write-through degrades to writeback-style buffering
//! and drains on recovery.
//!
//! Run with: `cargo run --release --example filer_outage [scale]`

use fcache::{DegradedPolicy, SimConfig, Workbench, WorkloadSpec};
use fcache_types::{ByteSize, FaultPlan};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale"))
        .unwrap_or(512);
    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(60),
        ..WorkloadSpec::default()
    };
    // Paper-scale clause: the window divides by the time scale with the
    // rest of the run, so the outage lands mid-run at any scale.
    let plan = FaultPlan::parse("filer:outage@40s-60s").expect("spec");

    println!("60 GB working set, 20 s filer outage at t=40 s, scale 1/{scale}\n");
    println!(
        "{:>9} | {:>9} {:>9} {:>7} {:>7} {:>9} {:>10}",
        "policy", "read us", "write us", "queued", "failed", "buffered", "degraded"
    );

    let healthy = wb
        .scenario(&SimConfig::baseline(), &spec)
        .run()
        .expect("healthy run");
    println!(
        "{:>9} | {:>9.1} {:>9.2} {:>7} {:>7} {:>9} {:>10}",
        "none",
        healthy.read_latency_us(),
        healthy.write_latency_us(),
        "-",
        "-",
        "-",
        "-"
    );

    for policy in [DegradedPolicy::Queue, DegradedPolicy::FailFast] {
        let report = wb
            .scenario(&SimConfig::baseline(), &spec)
            .fault_plan(plan.clone())
            .degraded(policy)
            .run()
            .expect("faulted run");
        let r = &report.robustness;
        println!(
            "{:>9} | {:>9.1} {:>9.2} {:>7} {:>7} {:>9} {:>10}",
            policy.label(),
            report.read_latency_us(),
            report.write_latency_us(),
            r.queued_ops,
            r.failed_ops,
            r.buffered_writes,
            format!("{}", r.degraded_time),
        );
    }

    // Strict: the same outage is a hard failure naming the clause.
    let err = wb
        .scenario(&SimConfig::baseline(), &spec)
        .fault_plan(plan)
        .degraded(DegradedPolicy::Strict)
        .run()
        .expect_err("strict must fail");
    println!("\nstrict: {err}");
}
