//! Meta-crate for the *Flash Caching on the Storage Client* reproduction.
//!
//! Hosts the workspace-level examples and integration tests; re-exports the
//! member crates for convenient access from a single dependency.

pub use fcache;
pub use fcache_cache;
pub use fcache_des;
pub use fcache_device;
pub use fcache_filer;
pub use fcache_fsmodel;
pub use fcache_net;
pub use fcache_trace;
pub use fcache_types;
