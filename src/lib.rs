//! Meta-crate for the *Flash Caching on the Storage Client* reproduction.
//!
//! Hosts the workspace-level examples and integration tests; re-exports the
//! member crates for convenient access from a single dependency.
//!
//! The run surface lives in [`fcache`]: pair a `SimConfig` with a
//! `Workload` (shared trace, per-job regenerated stream, or archived
//! file) in a `Scenario`, or fan a labeled grid of configurations out
//! with the `Sweep` builder — see `fcache::scenario` and the examples.

pub use fcache;
pub use fcache_cache;
pub use fcache_des;
pub use fcache_device;
pub use fcache_filer;
pub use fcache_fsmodel;
pub use fcache_net;
pub use fcache_trace;
pub use fcache_types;
